#include "storage/leaf_codec.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>

#include "storage/buffer_pool.h"
#include "util/dcheck.h"

namespace ruidx {
namespace storage {

namespace {
std::atomic<bool> g_leaf_compression{true};
}  // namespace

bool LeafCompressionEnabled() {
  return g_leaf_compression.load(std::memory_order_relaxed);
}
void SetLeafCompressionEnabled(bool enabled) {
  g_leaf_compression.store(enabled, std::memory_order_relaxed);
}

namespace leaf {

namespace {

constexpr size_t kFormatOff = 1;
constexpr size_t kCountOff = 2;
constexpr size_t kNextOff = 4;
constexpr size_t kPrevOff = 8;
constexpr size_t kPrefixLenOff = 12;
constexpr size_t kDataEndOff = 14;
constexpr size_t kPrefixOff = 16;
constexpr size_t kEntryFixed = 2 + 8;  // shared + suffix_len bytes, value

uint16_t LoadU16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
void StoreU16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, 2); }

uint16_t PageCount(const uint8_t* page) { return LoadU16(page + kCountOff); }
void SetPageCount(uint8_t* page, uint16_t v) {
  StoreU16(page + kCountOff, v);
}
uint16_t PrefixLen(const uint8_t* page) {
  return LoadU16(page + kPrefixLenOff);
}
uint16_t DataEnd(const uint8_t* page) { return LoadU16(page + kDataEndOff); }
void SetDataEnd(uint8_t* page, uint16_t v) {
  StoreU16(page + kDataEndOff, v);
}

size_t RestartCount(const uint8_t* page) {
  return LoadU16(page + kPageUsableSize - 2);
}
void SetRestartCount(uint8_t* page, uint16_t v) {
  StoreU16(page + kPageUsableSize - 2, v);
}
/// Byte position of restart j's {offset, index} pair (directory grows down
/// from the tail, restart 0 closest to the count word).
size_t RestartPos(size_t j) { return kPageUsableSize - 2 - 4 * (j + 1); }
uint16_t RestartOffset(const uint8_t* page, size_t j) {
  return LoadU16(page + RestartPos(j));
}
uint16_t RestartIndex(const uint8_t* page, size_t j) {
  return LoadU16(page + RestartPos(j) + 2);
}
void SetRestart(uint8_t* page, size_t j, uint16_t offset, uint16_t index) {
  StoreU16(page + RestartPos(j), offset);
  StoreU16(page + RestartPos(j) + 2, index);
}

/// Length of the common prefix of two keys.
size_t CommonLen(const Key& a, const Key& b) {
  size_t n = 0;
  while (n < kKeySize && a[n] == b[n]) ++n;
  return n;
}

/// Restart directory pairs needed for n entries at the fresh interval.
size_t RestartsFor(size_t n) {
  return (n + kRestartInterval - 1) / kRestartInterval;
}

/// Exact encoded size of entries[i..i+k) as one fresh page (header, prefix,
/// entry bytes, restart directory).
size_t EncodedSize(const Entry* entries, size_t i, size_t k) {
  if (k == 0) return kPrefixOff + 2;
  size_t prefix =
      k >= 2 ? CommonLen(entries[i].key, entries[i + k - 1].key) : kKeySize;
  size_t bytes = kPrefixOff + prefix + 2 + 4 * RestartsFor(k);
  for (size_t j = 0; j < k; ++j) {
    size_t shared = 0;
    if (j % kRestartInterval != 0) {
      shared = CommonLen(entries[i + j - 1].key, entries[i + j].key);
      if (shared > prefix) shared -= prefix; else shared = 0;
    }
    bytes += kEntryFixed + (kKeySize - prefix - shared);
  }
  return bytes;
}

/// Forward decoder over a compressed page. The key is materialized
/// incrementally: prefix bytes are loaded once, each entry overwrites only
/// its suffix, so sequential iteration touches each byte once.
struct Cursor {
  const uint8_t* page;
  size_t prefix_len;
  size_t count;
  size_t idx = 0;         // slot of the current entry
  size_t off = 0;         // byte offset of the current entry
  size_t entry_size = 0;  // byte size of the current entry
  Key key{};
  uint64_t value = 0;

  explicit Cursor(const uint8_t* p) : page(p) {
    prefix_len = PrefixLen(p);
    count = PageCount(p);
    std::memcpy(key.data(), p + kPrefixOff, prefix_len);
  }

  void DecodeEntry() {
    const uint8_t* e = page + off;
    uint8_t shared = e[0];
    uint8_t suffix = e[1];
    std::memcpy(key.data() + prefix_len + shared, e + 2, suffix);
    std::memcpy(&value, e + 2 + suffix, 8);
    entry_size = kEntryFixed + suffix;
  }

  /// Positions at the head of run j (its restart entry).
  void SeekRun(size_t j) {
    off = RestartOffset(page, j);
    idx = RestartIndex(page, j);
    DecodeEntry();
  }

  bool Next() {
    off += entry_size;
    if (++idx >= count) return false;
    DecodeEntry();
    return true;
  }

  /// Index of the run whose entries cover slot i (last restart with
  /// index <= i; i may be == count for append positions).
  size_t RunOf(size_t i) const {
    size_t lo = 0, hi = RestartCount(page);
    while (lo + 1 < hi) {
      size_t mid = (lo + hi) / 2;
      if (RestartIndex(page, mid) <= i) lo = mid; else hi = mid;
    }
    return lo;
  }

  /// Positions at slot i (restart jump, then a short linear decode).
  void SeekSlot(size_t i) {
    SeekRun(RunOf(i));
    while (idx < i) Next();
  }
};

/// Encodes entries[0..n) into `out` starting at entry offset `base`,
/// recording restart (offset, index) pairs with indices offset by
/// `index_base`. Returns one past the last entry byte written.
size_t EncodeEntries(uint8_t* out, size_t base, const Entry* entries, size_t n,
                     size_t prefix, size_t index_base,
                     std::vector<std::pair<uint16_t, uint16_t>>* restarts) {
  size_t off = base;
  for (size_t j = 0; j < n; ++j) {
    size_t shared = 0;
    if (j % kRestartInterval == 0) {
      restarts->emplace_back(static_cast<uint16_t>(off),
                             static_cast<uint16_t>(index_base + j));
    } else {
      shared = CommonLen(entries[j - 1].key, entries[j].key);
      if (shared > prefix) shared -= prefix; else shared = 0;
    }
    size_t suffix = kKeySize - prefix - shared;
    out[off] = static_cast<uint8_t>(shared);
    out[off + 1] = static_cast<uint8_t>(suffix);
    std::memcpy(out + off + 2, entries[j].key.data() + prefix + shared,
                suffix);
    std::memcpy(out + off + 2 + suffix, &entries[j].value, 8);
    off += kEntryFixed + suffix;
  }
  return off;
}

}  // namespace

bool IsCompressed(const uint8_t* page) {
  return page[kFormatOff] == kLeafFormatCompressed;
}

bool BuildLeaf(uint8_t* page, const Entry* entries, size_t n, uint32_t next,
               uint32_t prev) {
  if (EncodedSize(entries, 0, n) > kPageUsableSize) return false;
  uint8_t scratch[kPageUsableSize];
  std::memset(scratch, 0, sizeof(scratch));
  size_t prefix =
      n >= 2 ? CommonLen(entries[0].key, entries[n - 1].key)
             : (n == 1 ? kKeySize : 0);
  scratch[0] = 1;  // is_leaf
  scratch[kFormatOff] = kLeafFormatCompressed;
  SetPageCount(scratch, static_cast<uint16_t>(n));
  std::memcpy(scratch + kNextOff, &next, 4);
  std::memcpy(scratch + kPrevOff, &prev, 4);
  StoreU16(scratch + kPrefixLenOff, static_cast<uint16_t>(prefix));
  if (n > 0) std::memcpy(scratch + kPrefixOff, entries[0].key.data(), prefix);
  std::vector<std::pair<uint16_t, uint16_t>> restarts;
  size_t end =
      EncodeEntries(scratch, kPrefixOff + prefix, entries, n, prefix, 0,
                    &restarts);
  SetDataEnd(scratch, static_cast<uint16_t>(end));
  SetRestartCount(scratch, static_cast<uint16_t>(restarts.size()));
  for (size_t j = 0; j < restarts.size(); ++j) {
    SetRestart(scratch, j, restarts[j].first, restarts[j].second);
  }
  std::memcpy(page, scratch, kPageUsableSize);
  return true;
}

size_t MaxLeafTake(const Entry* entries, size_t i, size_t n) {
  RUIDX_DCHECK(i < n, "MaxLeafTake past the end");
  // Largest k with EncodedSize <= page, by binary search; k = 1 always fits.
  size_t lo = 1, hi = n - i;
  while (lo < hi) {
    size_t mid = (lo + hi + 1) / 2;
    if (EncodedSize(entries, i, mid) <= kPageUsableSize) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

void KeyAt(const uint8_t* page, size_t i, Key* out) {
  Cursor c(page);
  c.SeekSlot(i);
  *out = c.key;
}

uint64_t ValueAt(const uint8_t* page, size_t i) {
  Cursor c(page);
  c.SeekSlot(i);
  return c.value;
}

void SetValueAt(uint8_t* page, size_t i, uint64_t value) {
  Cursor c(page);
  c.SeekSlot(i);
  std::memcpy(page + c.off + c.entry_size - 8, &value, 8);
}

size_t LowerBound(const uint8_t* page, const Key& key, bool* exact) {
  *exact = false;
  size_t count = PageCount(page);
  if (count == 0) return 0;
  size_t prefix = PrefixLen(page);
  // Every key in the page starts with the prefix: one comparison against it
  // settles targets that diverge before the suffix bytes.
  int pc = std::memcmp(key.data(), page + kPrefixOff, prefix);
  if (pc < 0) return 0;
  if (pc > 0) return count;
  // Binary search the restart heads (shared == 0, so a head's suffix is
  // directly comparable), then decode forward inside one run.
  size_t nrestart = RestartCount(page);
  size_t lo = 0, hi = nrestart;  // last run whose head key <= target
  while (lo + 1 < hi) {
    size_t mid = (lo + hi) / 2;
    const uint8_t* e = page + RestartOffset(page, mid);
    int c = std::memcmp(e + 2, key.data() + prefix, e[1]);
    if (c <= 0) lo = mid; else hi = mid;
  }
  Cursor cur(page);
  cur.SeekRun(lo);
  for (;;) {
    int c = std::memcmp(cur.key.data(), key.data(), kKeySize);
    if (c == 0) {
      *exact = true;
      return cur.idx;
    }
    if (c > 0) return cur.idx;
    if (!cur.Next()) return count;
  }
}

void ForEachEntry(const uint8_t* page,
                  const std::function<bool(size_t, const Key&, uint64_t)>& fn) {
  if (PageCount(page) == 0) return;
  Cursor c(page);
  c.SeekRun(0);
  do {
    if (!fn(c.idx, c.key, c.value)) return;
  } while (c.Next());
}

void DecodeAll(const uint8_t* page, std::vector<Entry>* out) {
  out->clear();
  out->reserve(PageCount(page));
  ForEachEntry(page, [&](size_t, const Key& key, uint64_t value) {
    out->push_back(Entry{key, value});
    return true;
  });
}

namespace {

/// Shared tail of InsertAt/EraseAt: splices the re-encoded run
/// [run_start_off, old_run_end_off) -> `encoded` back into the page and
/// patches every later restart's offset (by the byte delta) and index (by
/// `index_delta`). Run `r` keeps its directory slot unless it emptied.
void SpliceRun(uint8_t* page, size_t r, size_t run_start_off,
               size_t old_run_end_off, const uint8_t* encoded,
               size_t encoded_len, int index_delta) {
  size_t data_end = DataEnd(page);
  ptrdiff_t delta =
      static_cast<ptrdiff_t>(encoded_len) -
      static_cast<ptrdiff_t>(old_run_end_off - run_start_off);
  std::memmove(page + run_start_off + encoded_len, page + old_run_end_off,
               data_end - old_run_end_off);
  std::memcpy(page + run_start_off, encoded, encoded_len);
  SetDataEnd(page, static_cast<uint16_t>(data_end + delta));
  size_t nrestart = RestartCount(page);
  if (encoded_len == 0) {
    // The run emptied: drop its directory slot (later pairs shift up one).
    for (size_t j = r; j + 1 < nrestart; ++j) {
      SetRestart(page, j, RestartOffset(page, j + 1),
                 RestartIndex(page, j + 1));
    }
    SetRestartCount(page, static_cast<uint16_t>(--nrestart));
    // Fall through: the shifted pairs still need the offset/index patch,
    // starting from the slot that now holds the first later run.
  } else {
    ++r;
  }
  for (size_t j = r; j < nrestart; ++j) {
    SetRestart(page, j,
               static_cast<uint16_t>(RestartOffset(page, j) + delta),
               static_cast<uint16_t>(RestartIndex(page, j) + index_delta));
  }
}

}  // namespace

InsertOutcome InsertAt(uint8_t* page, size_t idx, const Key& key,
                       uint64_t value) {
  size_t count = PageCount(page);
  if (count == 0) return InsertOutcome::kRebuild;
  size_t prefix = PrefixLen(page);
  if (std::memcmp(key.data(), page + kPrefixOff, prefix) != 0) {
    return InsertOutcome::kRebuild;
  }
  Cursor c(page);
  size_t r = c.RunOf(idx == count ? count - 1 : idx);
  size_t run_start = RestartIndex(page, r);
  size_t run_end = r + 1 < RestartCount(page) ? RestartIndex(page, r + 1)
                                              : count;
  if (run_end - run_start + 1 > kMaxRunLength) return InsertOutcome::kRebuild;
  // Decode the run, splice the new entry in, re-encode.
  std::vector<Entry> run;
  run.reserve(run_end - run_start + 1);
  c.SeekRun(r);
  size_t run_start_off = c.off;
  for (size_t i = run_start; i < run_end; ++i) {
    run.push_back(Entry{c.key, c.value});
    c.Next();  // advances c.off past the entry even at the page end
  }
  size_t old_run_end_off = c.off;
  run.insert(run.begin() + (idx - run_start), Entry{key, value});
  uint8_t encoded[kMaxRunLength * (kEntryFixed + kKeySize)];
  std::vector<std::pair<uint16_t, uint16_t>> head;
  size_t encoded_len =
      EncodeEntries(encoded, 0, run.data(), run.size(), prefix, 0, &head);
  size_t data_end = DataEnd(page);
  size_t dir_floor = RestartPos(RestartCount(page) - 1);
  if (data_end - (old_run_end_off - run_start_off) + encoded_len > dir_floor) {
    return InsertOutcome::kNoRoom;
  }
  SpliceRun(page, r, run_start_off, old_run_end_off, encoded, encoded_len,
            /*index_delta=*/1);
  SetPageCount(page, static_cast<uint16_t>(count + 1));
  return InsertOutcome::kDone;
}

void EraseAt(uint8_t* page, size_t idx) {
  size_t count = PageCount(page);
  RUIDX_DCHECK(idx < count, "EraseAt past the end");
  Cursor c(page);
  size_t r = c.RunOf(idx);
  size_t run_start = RestartIndex(page, r);
  size_t run_end = r + 1 < RestartCount(page) ? RestartIndex(page, r + 1)
                                              : count;
  std::vector<Entry> run;
  run.reserve(run_end - run_start);
  c.SeekRun(r);
  size_t run_start_off = c.off;
  for (size_t i = run_start; i < run_end; ++i) {
    if (i != idx) run.push_back(Entry{c.key, c.value});
    c.Next();  // advances c.off past the entry even at the page end
  }
  size_t old_run_end_off = c.off;
  uint8_t encoded[kMaxRunLength * (kEntryFixed + kKeySize)];
  std::vector<std::pair<uint16_t, uint16_t>> head;
  size_t encoded_len =
      EncodeEntries(encoded, 0, run.data(), run.size(), PrefixLen(page), 0,
                    &head);
  SpliceRun(page, r, run_start_off, old_run_end_off, encoded, encoded_len,
            /*index_delta=*/-1);
  SetPageCount(page, static_cast<uint16_t>(count - 1));
}

Status ValidateLeaf(const uint8_t* page) {
  if (!IsCompressed(page) || page[0] != 1) {
    return Status::Corruption("not a compressed leaf page");
  }
  size_t count = PageCount(page);
  size_t prefix = PrefixLen(page);
  size_t data_end = DataEnd(page);
  size_t nrestart = RestartCount(page);
  if (prefix > kKeySize) {
    return Status::Corruption("[restart-point-order] prefix longer than key");
  }
  size_t dir_floor =
      nrestart > 0 ? RestartPos(nrestart - 1) : kPageUsableSize - 2;
  if (data_end < kPrefixOff + prefix || data_end > dir_floor) {
    return Status::Corruption("[restart-point-order] data end out of bounds");
  }
  if ((count == 0) != (nrestart == 0)) {
    return Status::Corruption(
        "[restart-point-order] restart count disagrees with entry count");
  }
  // Restart pairs must march strictly forward in both offset and index,
  // start at the first entry, and bound run lengths.
  for (size_t j = 0; j < nrestart; ++j) {
    size_t off = RestartOffset(page, j);
    size_t idx = RestartIndex(page, j);
    if (j == 0 && (off != kPrefixOff + prefix || idx != 0)) {
      return Status::Corruption(
          "[restart-point-order] first restart not at the first entry");
    }
    if (j > 0 && (off <= RestartOffset(page, j - 1) ||
                  idx <= RestartIndex(page, j - 1))) {
      return Status::Corruption(
          "[restart-point-order] restart pairs out of order");
    }
    if (off >= data_end && count > 0) {
      return Status::Corruption(
          "[restart-point-order] restart points past the data region");
    }
    size_t end = j + 1 < nrestart ? RestartIndex(page, j + 1) : count;
    if (end <= idx || end - idx > kMaxRunLength) {
      return Status::Corruption("[restart-point-order] bad run length");
    }
  }
  if (count == 0) return Status::OK();
  // Walk every entry: suffix accounting, run heads at restart offsets,
  // strictly ascending keys, final offset landing exactly on data_end.
  Cursor c(page);
  c.SeekRun(0);
  Key prev{};
  size_t next_restart = 1;
  for (;;) {
    const uint8_t* e = page + c.off;
    if (e[0] + e[1] != kKeySize - prefix) {
      return Status::Corruption(
          "[compressed-page-reconstruction] entry suffix accounting broken");
    }
    bool at_head = next_restart <= nrestart &&
                   c.idx == RestartIndex(page, next_restart - 1);
    if (at_head && RestartOffset(page, next_restart - 1) != c.off) {
      return Status::Corruption(
          "[restart-point-order] restart offset misses its entry");
    }
    if (at_head && e[0] != 0) {
      return Status::Corruption(
          "[compressed-page-reconstruction] run head shares bytes");
    }
    if (c.idx > 0 &&
        std::memcmp(prev.data(), c.key.data(), kKeySize) >= 0) {
      return Status::Corruption(
          "[compressed-page-reconstruction] keys out of order");
    }
    if (at_head) ++next_restart;
    prev = c.key;
    if (!c.Next()) break;
  }
  // Next() advanced c.off past the final entry before reporting the end.
  if (c.off != data_end) {
    return Status::Corruption(
        "[compressed-page-reconstruction] entries do not end at data end");
  }
  // Round-trip, run by run: re-encoding each run's decoded entries must
  // reproduce the run's bytes exactly (the page is a fixed point of its own
  // codec under its current run chunking — a stale suffix, wrong shared
  // count, or phantom byte cannot survive this).
  for (size_t j = 0; j < nrestart; ++j) {
    size_t run_start = RestartIndex(page, j);
    size_t run_end = j + 1 < nrestart ? RestartIndex(page, j + 1) : count;
    std::vector<Entry> run;
    run.reserve(run_end - run_start);
    Cursor rc(page);
    rc.SeekRun(j);
    for (size_t i = run_start; i < run_end; ++i) {
      run.push_back(Entry{rc.key, rc.value});
      rc.Next();  // advances rc.off past the entry even at the page end
    }
    size_t run_off = RestartOffset(page, j);
    uint8_t encoded[kMaxRunLength * (kEntryFixed + kKeySize)];
    std::vector<std::pair<uint16_t, uint16_t>> heads;
    size_t encoded_len =
        EncodeEntries(encoded, 0, run.data(), run.size(), prefix, 0, &heads);
    if (encoded_len != rc.off - run_off ||
        std::memcmp(encoded, page + run_off, encoded_len) != 0) {
      return Status::Corruption(
          "[compressed-page-reconstruction] run " + std::to_string(j) +
          " does not re-encode to its stored bytes");
    }
  }
  return Status::OK();
}

void AccumulateStats(const uint8_t* page, PageStats* stats) {
  size_t count = PageCount(page);
  size_t prefix = PrefixLen(page);
  stats->entries += count;
  stats->key_bytes_raw += count * kKeySize;
  stats->key_bytes_stored += prefix;
  size_t nrestart = RestartCount(page);
  for (size_t j = 0; j < nrestart; ++j) {
    size_t end = j + 1 < nrestart ? RestartIndex(page, j + 1) : count;
    size_t len = std::min<size_t>(end - RestartIndex(page, j), kMaxRunLength);
    ++stats->run_length_histogram[len];
  }
  size_t off = kPrefixOff + prefix;
  size_t data_end = DataEnd(page);
  while (off < data_end) {
    const uint8_t* e = page + off;
    stats->key_bytes_stored += 2 + e[1];
    off += kEntryFixed + e[1];
  }
}

}  // namespace leaf
}  // namespace storage
}  // namespace ruidx
