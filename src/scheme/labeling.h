// LabelingScheme: the common interface all numbering schemes implement.
//
// A numbering scheme assigns each tree node an identifier such that the
// hierarchical orders (parent-child, ancestor-descendant,
// preceding-following) can be re-established from identifiers alone
// (Sec. 1 of the paper). The cross-scheme benchmarks exercise exactly this
// interface; scheme-specific capabilities (e.g. ruid's in-memory rparent or
// UID's child-range arithmetic) live on the concrete classes.
#ifndef RUIDX_SCHEME_LABELING_H_
#define RUIDX_SCHEME_LABELING_H_

#include <cstdint>
#include <memory>
#include <string>

#include "xml/dom.h"

namespace ruidx {
namespace scheme {

class LabelingScheme {
 public:
  virtual ~LabelingScheme() = default;

  virtual std::string name() const = 0;

  /// Assigns labels to every node of the tree rooted at `root`.
  virtual void Build(xml::Node* root) = 0;

  /// True iff, judging by labels alone, p is the parent of c.
  virtual bool IsParent(const xml::Node* p, const xml::Node* c) const = 0;

  /// True iff, judging by labels alone, a is a proper ancestor of d.
  virtual bool IsAncestor(const xml::Node* a, const xml::Node* d) const = 0;

  /// Document-order comparison from labels alone: negative when a comes
  /// before b (ancestors come before their descendants), 0 when a == b.
  virtual int CompareOrder(const xml::Node* a, const xml::Node* b) const = 0;

  /// Size of the node's label in bits.
  virtual uint64_t LabelBits(const xml::Node* n) const = 0;

  /// Sum of LabelBits over all labeled nodes.
  virtual uint64_t TotalLabelBits() const = 0;

  /// Human-readable label, for demos and debugging.
  virtual std::string LabelString(const xml::Node* n) const = 0;

  /// Relabels the tree after a structural mutation and returns the number of
  /// previously labeled nodes whose label changed (new nodes are labeled but
  /// not counted). This measures the "scope of identifier update" of
  /// Sec. 3.2.
  virtual uint64_t RelabelAndCount(xml::Node* root) = 0;
};

}  // namespace scheme
}  // namespace ruidx

#endif  // RUIDX_SCHEME_LABELING_H_
