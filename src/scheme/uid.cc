#include "scheme/uid.h"

#include <algorithm>
#include <cassert>

#include "xml/stats.h"

namespace ruidx {
namespace scheme {

BigUint UidParent(const BigUint& id, uint64_t k) {
  assert(k >= 1);
  assert(id >= BigUint(2));
  return (id - 2) / k + 1;
}

BigUint UidChild(const BigUint& id, uint64_t k, uint64_t j) {
  assert(j < k);
  return (id - 1) * k + (2 + j);
}

uint64_t UidLevel(const BigUint& id, uint64_t k) {
  uint64_t level = 0;
  BigUint cur = id;
  while (cur > BigUint(1)) {
    cur = UidParent(cur, k);
    ++level;
  }
  return level;
}

bool UidIsAncestor(const BigUint& a, const BigUint& d, uint64_t k) {
  // parent(i) < i, so ancestors always carry smaller identifiers; climb the
  // candidate descendant until we reach or pass `a`.
  if (d <= a) return false;
  BigUint cur = d;
  while (cur > a) cur = UidParent(cur, k);
  return cur == a;
}

namespace {

/// The ancestor chain of `id`, from the root (identifier 1) down to `id`.
std::vector<BigUint> AncestorChain(const BigUint& id, uint64_t k) {
  std::vector<BigUint> chain;
  BigUint cur = id;
  chain.push_back(cur);
  while (cur > BigUint(1)) {
    cur = UidParent(cur, k);
    chain.push_back(cur);
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

}  // namespace

int UidCompareOrder(const BigUint& a, const BigUint& b, uint64_t k) {
  if (a == b) return 0;
  // The Fig. 10 routine: compare the children of the lowest common ancestor
  // on the two node paths (Lemma 2). Sibling identifiers are consecutive
  // integers ordered left to right, so the numeric order of those children
  // is the document order.
  std::vector<BigUint> ca = AncestorChain(a, k);
  std::vector<BigUint> cb = AncestorChain(b, k);
  size_t i = 0;
  while (i < ca.size() && i < cb.size() && ca[i] == cb[i]) ++i;
  if (i == ca.size()) return -1;  // a is an ancestor of b: a comes first
  if (i == cb.size()) return 1;   // b is an ancestor of a
  return ca[i] < cb[i] ? -1 : 1;
}

void UidScheme::Assign(xml::Node* root,
                       std::unordered_map<uint32_t, BigUint>* labels) const {
  struct Frame {
    xml::Node* node;
    BigUint id;
  };
  std::vector<Frame> stack;
  stack.push_back({root, BigUint(1)});
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    const auto& ch = f.node->children();
    for (size_t j = 0; j < ch.size(); ++j) {
      stack.push_back({ch[j], UidChild(f.id, k_, j)});
    }
    (*labels)[f.node->serial()] = std::move(f.id);
  }
}

void UidScheme::Build(xml::Node* root) {
  xml::TreeStats stats = xml::ComputeStats(root);
  k_ = std::max<uint64_t>({requested_k_, stats.max_fanout, 1});
  labels_.clear();
  by_label_.clear();
  Assign(root, &labels_);
  max_label_ = BigUint(0);
  for (const auto& [serial, id] : labels_) {
    if (id > max_label_) max_label_ = id;
  }
  by_label_.reserve(labels_.size());
  xml::PreorderTraverse(root, [&](xml::Node* n, int) {
    by_label_[labels_.at(n->serial())] = n;
    return true;
  });
}

const BigUint& UidScheme::label(const xml::Node* n) const {
  return labels_.at(n->serial());
}

xml::Node* UidScheme::NodeByLabel(const BigUint& id) const {
  auto it = by_label_.find(id);
  return it == by_label_.end() ? nullptr : it->second;
}

bool UidScheme::IsParent(const xml::Node* p, const xml::Node* c) const {
  const BigUint& cid = label(c);
  if (cid <= BigUint(1)) return false;
  return UidParent(cid, k_) == label(p);
}

bool UidScheme::IsAncestor(const xml::Node* a, const xml::Node* d) const {
  return UidIsAncestor(label(a), label(d), k_);
}

int UidScheme::CompareOrder(const xml::Node* a, const xml::Node* b) const {
  return UidCompareOrder(label(a), label(b), k_);
}

uint64_t UidScheme::LabelBits(const xml::Node* n) const {
  return static_cast<uint64_t>(label(n).BitWidth());
}

uint64_t UidScheme::TotalLabelBits() const {
  uint64_t total = 0;
  for (const auto& [serial, id] : labels_) {
    total += static_cast<uint64_t>(id.BitWidth());
  }
  return total;
}

std::string UidScheme::LabelString(const xml::Node* n) const {
  return label(n).ToDecimalString();
}

uint64_t UidScheme::RelabelAndCount(xml::Node* root) {
  xml::TreeStats stats = xml::ComputeStats(root);
  // Fan-out overflow forces an enlargement of k and with it a renumbering of
  // the whole document (Sec. 1: "the modification of k results in an
  // overhaul of the identifier system").
  k_ = std::max<uint64_t>({k_, stats.max_fanout, 1});
  std::unordered_map<uint32_t, BigUint> fresh;
  Assign(root, &fresh);
  uint64_t changed = 0;
  for (const auto& [serial, id] : fresh) {
    auto it = labels_.find(serial);
    if (it != labels_.end() && it->second != id) ++changed;
  }
  labels_ = std::move(fresh);
  by_label_.clear();
  max_label_ = BigUint(0);
  for (const auto& [serial, id] : labels_) {
    if (id > max_label_) max_label_ = id;
  }
  xml::PreorderTraverse(root, [&](xml::Node* n, int) {
    by_label_[labels_.at(n->serial())] = n;
    return true;
  });
  return changed;
}

}  // namespace scheme
}  // namespace ruidx
