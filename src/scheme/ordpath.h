// ORDPATH labels (O'Neil et al., SIGMOD 2004): Dewey-style paths whose
// initial components are odd; insertions anywhere claim an unused odd value
// or extend through an even "caret" component, so no existing label ever
// changes — the strongest updatable-labeling baseline, at the price of
// labels that grow with update history. (Later work than the paper, but the
// canonical answer to the update problem the paper attacks; including it
// makes the E11 comparison honest.)
//
// Well-formedness: a label is a non-empty sequence of signed components
// ending in an odd value; even components are carets that do not count as
// levels. Order is lexicographic; ancestorship is the proper-prefix
// relation; a node's depth is the number of odd components.
#ifndef RUIDX_SCHEME_ORDPATH_H_
#define RUIDX_SCHEME_ORDPATH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "scheme/labeling.h"

namespace ruidx {
namespace scheme {

using OrdpathLabel = std::vector<int64_t>;

/// Lexicographic comparison; a proper prefix precedes its extensions.
int OrdpathCompare(const OrdpathLabel& a, const OrdpathLabel& b);

/// True iff a is a proper prefix of d.
bool OrdpathIsAncestor(const OrdpathLabel& a, const OrdpathLabel& d);

/// Number of odd components (the node's depth; the root has level 1).
int OrdpathLevel(const OrdpathLabel& label);

/// A label strictly between `left` and `right` (either may be empty,
/// meaning unbounded on that side) that is a child-label extension of
/// `parent`. Both bounds, when present, must be child labels of `parent`.
OrdpathLabel OrdpathBetween(const OrdpathLabel& parent,
                            const OrdpathLabel* left,
                            const OrdpathLabel* right);

class OrdpathScheme : public LabelingScheme {
 public:
  std::string name() const override { return "ordpath"; }
  void Build(xml::Node* root) override;
  bool IsParent(const xml::Node* p, const xml::Node* c) const override;
  bool IsAncestor(const xml::Node* a, const xml::Node* d) const override;
  int CompareOrder(const xml::Node* a, const xml::Node* b) const override;
  uint64_t LabelBits(const xml::Node* n) const override;
  uint64_t TotalLabelBits() const override;
  std::string LabelString(const xml::Node* n) const override;

  /// Deletions never relabel; insertions claim fresh labels between their
  /// neighbours (possibly careted), so this always returns 0 — ORDPATH's
  /// defining property. Label *growth* is the cost, visible in LabelBits.
  uint64_t RelabelAndCount(xml::Node* root) override;

  const OrdpathLabel& label(const xml::Node* n) const {
    return labels_.at(n->serial());
  }

 private:
  /// Assigns fresh odd-enumeration labels to `n`'s whole subtree, with `n`
  /// itself getting `root_label`.
  void AssignSubtree(xml::Node* n, OrdpathLabel root_label);

  std::unordered_map<uint32_t, OrdpathLabel> labels_;
};

}  // namespace scheme
}  // namespace ruidx

#endif  // RUIDX_SCHEME_ORDPATH_H_
