// Dewey order labels: each node is labeled with the path of 1-based child
// ordinals from the root (e.g. 1.3.2). A classic structural numbering
// baseline (cf. Sec. 6 related work); parent = drop the last component,
// ancestor = prefix test, document order = lexicographic comparison.
#ifndef RUIDX_SCHEME_DEWEY_H_
#define RUIDX_SCHEME_DEWEY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "scheme/labeling.h"

namespace ruidx {
namespace scheme {

using DeweyLabel = std::vector<uint32_t>;

/// Lexicographic comparison; a strict prefix precedes its extensions.
int DeweyCompare(const DeweyLabel& a, const DeweyLabel& b);

/// True iff a is a proper prefix of d.
bool DeweyIsAncestor(const DeweyLabel& a, const DeweyLabel& d);

class DeweyScheme : public LabelingScheme {
 public:
  std::string name() const override { return "dewey"; }
  void Build(xml::Node* root) override;
  bool IsParent(const xml::Node* p, const xml::Node* c) const override;
  bool IsAncestor(const xml::Node* a, const xml::Node* d) const override;
  int CompareOrder(const xml::Node* a, const xml::Node* b) const override;
  uint64_t LabelBits(const xml::Node* n) const override;
  uint64_t TotalLabelBits() const override;
  std::string LabelString(const xml::Node* n) const override;
  uint64_t RelabelAndCount(xml::Node* root) override;

  const DeweyLabel& label(const xml::Node* n) const {
    return labels_.at(n->serial());
  }

 private:
  void Assign(xml::Node* root,
              std::unordered_map<uint32_t, DeweyLabel>* labels) const;

  std::unordered_map<uint32_t, DeweyLabel> labels_;
};

}  // namespace scheme
}  // namespace ruidx

#endif  // RUIDX_SCHEME_DEWEY_H_
