#include "scheme/dewey.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace ruidx {
namespace scheme {

int DeweyCompare(const DeweyLabel& a, const DeweyLabel& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

bool DeweyIsAncestor(const DeweyLabel& a, const DeweyLabel& d) {
  if (a.size() >= d.size()) return false;
  return std::equal(a.begin(), a.end(), d.begin());
}

void DeweyScheme::Assign(
    xml::Node* root, std::unordered_map<uint32_t, DeweyLabel>* labels) const {
  struct Frame {
    xml::Node* node;
    DeweyLabel label;
  };
  std::vector<Frame> stack;
  stack.push_back({root, {1}});
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    const auto& ch = f.node->children();
    for (size_t j = 0; j < ch.size(); ++j) {
      DeweyLabel child = f.label;
      child.push_back(static_cast<uint32_t>(j + 1));
      stack.push_back({ch[j], std::move(child)});
    }
    (*labels)[f.node->serial()] = std::move(f.label);
  }
}

void DeweyScheme::Build(xml::Node* root) {
  labels_.clear();
  Assign(root, &labels_);
}

bool DeweyScheme::IsParent(const xml::Node* p, const xml::Node* c) const {
  const DeweyLabel& lp = label(p);
  const DeweyLabel& lc = label(c);
  return lp.size() + 1 == lc.size() && DeweyIsAncestor(lp, lc);
}

bool DeweyScheme::IsAncestor(const xml::Node* a, const xml::Node* d) const {
  return DeweyIsAncestor(label(a), label(d));
}

int DeweyScheme::CompareOrder(const xml::Node* a, const xml::Node* b) const {
  return DeweyCompare(label(a), label(b));
}

uint64_t DeweyScheme::LabelBits(const xml::Node* n) const {
  // Variable-length encoding: each component costs its bit width (min 1).
  uint64_t bits = 0;
  for (uint32_t c : label(n)) {
    bits += std::max(1, 32 - std::countl_zero(c));
  }
  return bits;
}

uint64_t DeweyScheme::TotalLabelBits() const {
  uint64_t total = 0;
  for (const auto& [serial, l] : labels_) {
    for (uint32_t c : l) total += std::max(1, 32 - std::countl_zero(c));
  }
  return total;
}

std::string DeweyScheme::LabelString(const xml::Node* n) const {
  std::ostringstream os;
  const DeweyLabel& l = label(n);
  for (size_t i = 0; i < l.size(); ++i) {
    if (i != 0) os << ".";
    os << l[i];
  }
  return os.str();
}

uint64_t DeweyScheme::RelabelAndCount(xml::Node* root) {
  std::unordered_map<uint32_t, DeweyLabel> fresh;
  Assign(root, &fresh);
  uint64_t changed = 0;
  for (const auto& [serial, l] : fresh) {
    auto it = labels_.find(serial);
    if (it != labels_.end() && it->second != l) ++changed;
  }
  labels_ = std::move(fresh);
  return changed;
}

}  // namespace scheme
}  // namespace ruidx
