#include "scheme/ordpath.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <sstream>

namespace ruidx {
namespace scheme {

int OrdpathCompare(const OrdpathLabel& a, const OrdpathLabel& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

bool OrdpathIsAncestor(const OrdpathLabel& a, const OrdpathLabel& d) {
  if (a.size() >= d.size()) return false;
  return std::equal(a.begin(), a.end(), d.begin());
}

int OrdpathLevel(const OrdpathLabel& label) {
  int level = 0;
  for (int64_t c : label) {
    if (c % 2 != 0) ++level;
  }
  return level;
}

OrdpathLabel OrdpathBetween(const OrdpathLabel& parent,
                            const OrdpathLabel* left,
                            const OrdpathLabel* right) {
  OrdpathLabel out = parent;
  size_t i = parent.size();
  for (;;) {
    if (left == nullptr && right == nullptr) {
      out.push_back(1);
      return out;
    }
    if (left == nullptr) {
      // Unbounded below: largest odd strictly under right's component.
      assert(i < right->size());
      int64_t c = (*right)[i];
      out.push_back(c % 2 != 0 ? c - 2 : c - 1);
      return out;
    }
    if (right == nullptr) {
      // Unbounded above: smallest odd strictly over left's component.
      assert(i < left->size());
      int64_t c = (*left)[i];
      out.push_back(c % 2 != 0 ? c + 2 : c + 1);
      return out;
    }
    // Copy the common run (neither bound is a prefix of the other: both end
    // in odd components and neither contains the other as a sibling).
    while (i < left->size() && i < right->size() &&
           (*left)[i] == (*right)[i]) {
      out.push_back((*left)[i]);
      ++i;
    }
    assert(i < left->size() && i < right->size());
    int64_t lo = (*left)[i];
    int64_t hi = (*right)[i];
    assert(lo < hi);
    int64_t m = lo % 2 != 0 ? lo + 2 : lo + 1;  // first odd above lo
    if (m < hi) {
      out.push_back(m);
      return out;
    }
    if (lo % 2 != 0 && hi % 2 != 0) {
      // Adjacent odds (hi == lo + 2): extend through the even caret.
      out.push_back(lo + 1);
      out.push_back(1);
      return out;
    }
    if (lo % 2 == 0) {
      // Left bound carets here, so it continues; slide in after its
      // continuation: everything out+[lo]+suffix(left) < x < out+[hi...].
      out.push_back(lo);
      ++i;
      right = nullptr;
    } else {
      // Right bound carets here; slide in before its continuation.
      out.push_back(hi);
      ++i;
      left = nullptr;
    }
  }
}

void OrdpathScheme::AssignSubtree(xml::Node* n, OrdpathLabel root_label) {
  struct Frame {
    xml::Node* node;
    OrdpathLabel label;
  };
  std::vector<Frame> stack;
  stack.push_back({n, std::move(root_label)});
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    const auto& ch = f.node->children();
    for (size_t j = 0; j < ch.size(); ++j) {
      OrdpathLabel child = f.label;
      child.push_back(static_cast<int64_t>(2 * j + 1));
      stack.push_back({ch[j], std::move(child)});
    }
    labels_[f.node->serial()] = std::move(f.label);
  }
}

void OrdpathScheme::Build(xml::Node* root) {
  labels_.clear();
  AssignSubtree(root, OrdpathLabel{1});
}

bool OrdpathScheme::IsParent(const xml::Node* p, const xml::Node* c) const {
  const OrdpathLabel& lp = label(p);
  const OrdpathLabel& lc = label(c);
  return OrdpathIsAncestor(lp, lc) &&
         OrdpathLevel(lc) == OrdpathLevel(lp) + 1;
}

bool OrdpathScheme::IsAncestor(const xml::Node* a, const xml::Node* d) const {
  return OrdpathIsAncestor(label(a), label(d));
}

int OrdpathScheme::CompareOrder(const xml::Node* a, const xml::Node* b) const {
  return OrdpathCompare(label(a), label(b));
}

uint64_t OrdpathScheme::LabelBits(const xml::Node* n) const {
  uint64_t bits = 0;
  for (int64_t c : label(n)) {
    uint64_t magnitude = static_cast<uint64_t>(c < 0 ? -c : c);
    bits += 1 +  // sign
            std::max<uint64_t>(1, 64 - static_cast<uint64_t>(
                                          std::countl_zero(magnitude | 1)));
  }
  return bits;
}

uint64_t OrdpathScheme::TotalLabelBits() const {
  uint64_t total = 0;
  for (const auto& [serial, l] : labels_) {
    for (int64_t c : l) {
      uint64_t magnitude = static_cast<uint64_t>(c < 0 ? -c : c);
      total += 1 + std::max<uint64_t>(
                       1, 64 - static_cast<uint64_t>(
                                   std::countl_zero(magnitude | 1)));
    }
  }
  return total;
}

std::string OrdpathScheme::LabelString(const xml::Node* n) const {
  std::ostringstream os;
  const OrdpathLabel& l = label(n);
  for (size_t i = 0; i < l.size(); ++i) {
    if (i != 0) os << ".";
    os << l[i];
  }
  return os.str();
}

uint64_t OrdpathScheme::RelabelAndCount(xml::Node* root) {
  // Deletions: nothing to do (prefix labels of survivors are untouched).
  // Insertions: label each new subtree between its neighbours' labels.
  // Processing in document order guarantees a left neighbour (if any) is
  // labeled by the time we reach a new node.
  xml::PreorderTraverse(root, [&](xml::Node* n, int) {
    if (labels_.contains(n->serial())) return true;
    xml::Node* parent = n->parent();
    if (parent == nullptr || parent->is_document() ||
        !labels_.contains(parent->serial())) {
      return true;  // interior of a new subtree: AssignSubtree covers it
    }
    const OrdpathLabel& parent_label = labels_.at(parent->serial());
    int idx = n->IndexInParent();
    const auto& sibs = parent->children();
    const OrdpathLabel* left = nullptr;
    const OrdpathLabel* right = nullptr;
    if (idx > 0) {
      auto it = labels_.find(sibs[static_cast<size_t>(idx - 1)]->serial());
      if (it != labels_.end()) left = &it->second;
    }
    if (static_cast<size_t>(idx + 1) < sibs.size()) {
      auto it = labels_.find(sibs[static_cast<size_t>(idx + 1)]->serial());
      if (it != labels_.end()) right = &it->second;
    }
    AssignSubtree(n, OrdpathBetween(parent_label, left, right));
    return false;  // subtree fully labeled; skip descending
  });
  // Drop labels of removed serials (cosmetic; costs no relabeling).
  std::unordered_map<uint32_t, bool> in_tree;
  xml::PreorderTraverse(root, [&](xml::Node* n, int) {
    in_tree[n->serial()] = true;
    return true;
  });
  for (auto it = labels_.begin(); it != labels_.end();) {
    if (!in_tree.contains(it->first)) {
      it = labels_.erase(it);
    } else {
      ++it;
    }
  }
  return 0;
}

}  // namespace scheme
}  // namespace ruidx
