// XISS order/size labels (Li & Moon, VLDB 2001 — [6] in the paper).
//
// Each node carries (order, size, level); the node's subtree occupies the
// interval (order, order + size]. Ancestorship is interval containment:
//   a ancestor-of d  <=>  order(a) < order(d) <= order(a) + size(a).
// Sizes are over-allocated by a slack factor, so insertions that fit into a
// spare gap do not relabel anybody; an insertion that does not fit forces a
// re-enumeration. This is the strongest of the classical baselines for the
// update experiment (E11).
#ifndef RUIDX_SCHEME_XISS_H_
#define RUIDX_SCHEME_XISS_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "scheme/labeling.h"

namespace ruidx {
namespace scheme {

struct XissLabel {
  uint64_t order = 0;
  uint64_t size = 0;
  uint32_t level = 0;

  bool operator==(const XissLabel&) const = default;
};

class XissScheme : public LabelingScheme {
 public:
  /// \param slack multiplicative over-allocation per internal node (>= 1.0).
  /// \param leaf_slack spare interval width reserved at every leaf.
  explicit XissScheme(double slack = 1.25, uint64_t leaf_slack = 4)
      : slack_(slack), leaf_slack_(leaf_slack) {}

  std::string name() const override { return "xiss"; }
  void Build(xml::Node* root) override;
  bool IsParent(const xml::Node* p, const xml::Node* c) const override;
  bool IsAncestor(const xml::Node* a, const xml::Node* d) const override;
  int CompareOrder(const xml::Node* a, const xml::Node* b) const override;
  uint64_t LabelBits(const xml::Node* n) const override;
  uint64_t TotalLabelBits() const override;
  std::string LabelString(const xml::Node* n) const override;

  /// Deletions never relabel (the freed interval becomes slack). An
  /// insertion is absorbed into a spare gap when one is wide enough;
  /// otherwise the whole document is re-enumerated.
  uint64_t RelabelAndCount(xml::Node* root) override;

  const XissLabel& label(const xml::Node* n) const {
    return labels_.at(n->serial());
  }

 private:
  /// Width the subtree at `n` needs, including slack.
  uint64_t RequiredSize(const xml::Node* n) const;
  void Assign(xml::Node* root,
              std::unordered_map<uint32_t, XissLabel>* labels) const;
  /// Attempts to place the (new) subtree at `n` into the spare gap around
  /// its position; returns false when the gap is too narrow.
  bool TryGapInsert(xml::Node* n);

  double slack_;
  uint64_t leaf_slack_;
  std::unordered_map<uint32_t, XissLabel> labels_;
};

}  // namespace scheme
}  // namespace ruidx

#endif  // RUIDX_SCHEME_XISS_H_
