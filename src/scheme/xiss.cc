#include "scheme/xiss.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <sstream>
#include <vector>

namespace ruidx {
namespace scheme {

namespace {
// Interval widths are clamped well below 2^64 so that top-down assignment
// cannot overflow even after slack compounding on deep trees.
constexpr uint64_t kMaxSize = uint64_t{1} << 62;
}  // namespace

uint64_t XissScheme::RequiredSize(const xml::Node* n) const {
  // Iterative postorder with memoization (documents can be arbitrarily
  // deep). The memo is keyed by serial and lookup-only — all traversal goes
  // through the DOM, never through the map.
  std::unordered_map<uint32_t, uint64_t> memo;
  struct Frame {
    const xml::Node* node;
    bool entering;
  };
  std::vector<Frame> stack{{n, true}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.entering) {
      if (f.node->children().empty()) {
        memo[f.node->serial()] = leaf_slack_;
        continue;
      }
      stack.push_back({f.node, false});
      for (const xml::Node* c : f.node->children()) {
        stack.push_back({c, true});
      }
    } else {
      unsigned __int128 sum = 0;
      for (const xml::Node* c : f.node->children()) {
        sum += memo.at(c->serial()) + 1;
      }
      double scaled = static_cast<double>(sum) * slack_;
      uint64_t size = scaled >= static_cast<double>(kMaxSize)
                          ? kMaxSize
                          : static_cast<uint64_t>(std::ceil(scaled));
      memo[f.node->serial()] = std::min(size, kMaxSize);
    }
  }
  return memo.at(n->serial());
}

void XissScheme::Assign(xml::Node* root,
                        std::unordered_map<uint32_t, XissLabel>* labels) const {
  // Pass 1: subtree widths (serial-keyed lookup table, DOM-driven walk).
  std::unordered_map<uint32_t, uint64_t> sizes;
  {
    struct Frame {
      const xml::Node* node;
      bool entering;
    };
    std::vector<Frame> stack{{root, true}};
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      if (f.entering) {
        if (f.node->children().empty()) {
          sizes[f.node->serial()] = leaf_slack_;
          continue;
        }
        stack.push_back({f.node, false});
        for (const xml::Node* c : f.node->children()) {
          stack.push_back({c, true});
        }
      } else {
        unsigned __int128 sum = 0;
        for (const xml::Node* c : f.node->children()) {
          sum += sizes.at(c->serial()) + 1;
        }
        double scaled = static_cast<double>(sum) * slack_;
        uint64_t size = scaled >= static_cast<double>(kMaxSize)
                            ? kMaxSize
                            : static_cast<uint64_t>(std::ceil(scaled));
        sizes[f.node->serial()] = std::min(size, kMaxSize);
      }
    }
  }
  // Pass 2: orders, top-down. The parent's spare width is spread evenly
  // between the child slots so that insertions anywhere in the sibling list
  // find a gap, not only at the tail.
  struct Frame {
    xml::Node* node;
    uint64_t order;
    uint32_t level;
  };
  std::vector<Frame> stack{{root, 1, 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    uint64_t my_size = sizes.at(f.node->serial());
    (*labels)[f.node->serial()] = {f.order, my_size, f.level};
    const auto& ch = f.node->children();
    if (ch.empty()) continue;
    uint64_t needed = 0;
    for (xml::Node* c : ch) needed += sizes.at(c->serial()) + 1;
    uint64_t extra = my_size > needed ? my_size - needed : 0;
    uint64_t pad = extra / (ch.size() + 1);
    uint64_t cursor = f.order + 1 + pad;
    for (xml::Node* c : ch) {
      stack.push_back({c, cursor, f.level + 1});
      cursor += sizes.at(c->serial()) + 1 + pad;
    }
  }
}

void XissScheme::Build(xml::Node* root) {
  labels_.clear();
  Assign(root, &labels_);
}

bool XissScheme::IsParent(const xml::Node* p, const xml::Node* c) const {
  return IsAncestor(p, c) && label(p).level + 1 == label(c).level;
}

bool XissScheme::IsAncestor(const xml::Node* a, const xml::Node* d) const {
  const XissLabel& la = label(a);
  const XissLabel& ld = label(d);
  return la.order < ld.order && ld.order <= la.order + la.size;
}

int XissScheme::CompareOrder(const xml::Node* a, const xml::Node* b) const {
  uint64_t oa = label(a).order;
  uint64_t ob = label(b).order;
  if (oa == ob) return 0;
  return oa < ob ? -1 : 1;
}

uint64_t XissScheme::LabelBits(const xml::Node* n) const {
  const XissLabel& l = label(n);
  auto width = [](uint64_t v) {
    return static_cast<uint64_t>(std::max(1, 64 - std::countl_zero(v)));
  };
  return width(l.order) + width(l.size) + width(l.level);
}

uint64_t XissScheme::TotalLabelBits() const {
  uint64_t total = 0;
  for (const auto& [serial, l] : labels_) {
    auto width = [](uint64_t v) {
      return static_cast<uint64_t>(std::max(1, 64 - std::countl_zero(v)));
    };
    total += width(l.order) + width(l.size) + width(l.level);
  }
  return total;
}

std::string XissScheme::LabelString(const xml::Node* n) const {
  const XissLabel& l = label(n);
  std::ostringstream os;
  os << "(" << l.order << "+" << l.size << ",L" << l.level << ")";
  return os.str();
}

bool XissScheme::TryGapInsert(xml::Node* n) {
  xml::Node* parent = n->parent();
  if (parent == nullptr) return false;
  auto pit = labels_.find(parent->serial());
  if (pit == labels_.end()) return false;
  const XissLabel& lp = pit->second;

  int idx = n->IndexInParent();
  assert(idx >= 0);
  const auto& sibs = parent->children();
  // Free integers available for n's interval: (lo, hi].
  uint64_t lo = lp.order;
  if (idx > 0) {
    auto it = labels_.find(sibs[static_cast<size_t>(idx - 1)]->serial());
    if (it == labels_.end()) return false;  // left neighbour still unlabeled
    lo = it->second.order + it->second.size;
  }
  uint64_t hi = lp.order + lp.size;
  if (static_cast<size_t>(idx + 1) < sibs.size()) {
    auto it = labels_.find(sibs[static_cast<size_t>(idx + 1)]->serial());
    if (it == labels_.end()) return false;
    hi = it->second.order - 1;
  }
  uint64_t need = RequiredSize(n);
  // The subtree occupies [order, order+size] with order = lo + 1.
  if (hi < lo + 1 || hi - lo - 1 < need) return false;

  // Place n and its whole (new) subtree inside the gap.
  struct Frame {
    xml::Node* node;
    uint64_t order;
    uint32_t level;
  };
  std::unordered_map<uint32_t, uint64_t> sizes;
  // Compute sizes bottom-up for the new subtree only (serial-keyed lookup
  // table, DOM-driven walk).
  {
    struct SFrame {
      const xml::Node* node;
      bool entering;
    };
    std::vector<SFrame> stack{{n, true}};
    while (!stack.empty()) {
      SFrame f = stack.back();
      stack.pop_back();
      if (f.entering) {
        if (f.node->children().empty()) {
          sizes[f.node->serial()] = leaf_slack_;
          continue;
        }
        stack.push_back({f.node, false});
        for (const xml::Node* c : f.node->children()) {
          stack.push_back({c, true});
        }
      } else {
        unsigned __int128 sum = 0;
        for (const xml::Node* c : f.node->children()) {
          sum += sizes.at(c->serial()) + 1;
        }
        double scaled = static_cast<double>(sum) * slack_;
        sizes[f.node->serial()] = scaled >= static_cast<double>(kMaxSize)
                                      ? kMaxSize
                                      : static_cast<uint64_t>(std::ceil(scaled));
      }
    }
  }
  std::vector<Frame> stack{{n, lo + 1, lp.level + 1}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    labels_[f.node->serial()] = {f.order, sizes.at(f.node->serial()), f.level};
    uint64_t cursor = f.order + 1;
    for (xml::Node* c : f.node->children()) {
      stack.push_back({c, cursor, f.level + 1});
      cursor += sizes.at(c->serial()) + 1;
    }
  }
  return true;
}

uint64_t XissScheme::RelabelAndCount(xml::Node* root) {
  // Identify new nodes (no label yet) and the set of surviving serials.
  std::vector<xml::Node*> new_roots;
  std::unordered_map<uint32_t, bool> in_tree;
  xml::PreorderTraverse(root, [&](xml::Node* n, int) {
    in_tree[n->serial()] = true;
    if (!labels_.contains(n->serial())) {
      xml::Node* p = n->parent();
      // Only the topmost unlabeled node of each new subtree needs placing.
      if (p == nullptr || labels_.contains(p->serial())) {
        new_roots.push_back(n);
      }
    }
    return true;
  });
  // Deleted subtrees: their intervals become reusable slack; nobody else
  // is relabeled.
  for (auto it = labels_.begin(); it != labels_.end();) {
    if (!in_tree.contains(it->first)) {
      it = labels_.erase(it);
    } else {
      ++it;
    }
  }

  bool all_absorbed = true;
  for (xml::Node* n : new_roots) {
    if (!TryGapInsert(n)) {
      all_absorbed = false;
      break;
    }
  }
  if (all_absorbed) return 0;

  // Overflow: re-enumerate the document and count the casualties.
  std::unordered_map<uint32_t, XissLabel> fresh;
  Assign(root, &fresh);
  uint64_t changed = 0;
  for (const auto& [serial, l] : fresh) {
    auto it = labels_.find(serial);
    if (it != labels_.end() && !(it->second == l)) ++changed;
  }
  labels_ = std::move(fresh);
  return changed;
}

}  // namespace scheme
}  // namespace ruidx
