#include "scheme/prepost.h"

#include <bit>
#include <sstream>
#include <vector>

namespace ruidx {
namespace scheme {

void PrePostScheme::Assign(
    xml::Node* root,
    std::unordered_map<uint32_t, PrePostLabel>* labels) const {
  uint64_t pre = 0;
  uint64_t post = 0;
  struct Frame {
    xml::Node* node;
    uint32_t level;
    bool entering;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0, true});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (!f.entering) {
      (*labels)[f.node->serial()].post = post++;
      continue;
    }
    PrePostLabel l;
    l.pre = pre++;
    l.level = f.level;
    (*labels)[f.node->serial()] = l;
    stack.push_back({f.node, f.level, false});
    const auto& ch = f.node->children();
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) {
      stack.push_back({*it, f.level + 1, true});
    }
  }
}

void PrePostScheme::Build(xml::Node* root) {
  labels_.clear();
  Assign(root, &labels_);
}

bool PrePostScheme::IsParent(const xml::Node* p, const xml::Node* c) const {
  const PrePostLabel& lp = label(p);
  const PrePostLabel& lc = label(c);
  return lp.pre < lc.pre && lp.post > lc.post && lp.level + 1 == lc.level;
}

bool PrePostScheme::IsAncestor(const xml::Node* a, const xml::Node* d) const {
  const PrePostLabel& la = label(a);
  const PrePostLabel& ld = label(d);
  return la.pre < ld.pre && la.post > ld.post;
}

int PrePostScheme::CompareOrder(const xml::Node* a, const xml::Node* b) const {
  const PrePostLabel& la = label(a);
  const PrePostLabel& lb = label(b);
  if (la.pre == lb.pre) return 0;
  return la.pre < lb.pre ? -1 : 1;
}

uint64_t PrePostScheme::LabelBits(const xml::Node* n) const {
  const PrePostLabel& l = label(n);
  auto width = [](uint64_t v) {
    return static_cast<uint64_t>(std::max(1, 64 - std::countl_zero(v)));
  };
  return width(l.pre) + width(l.post) + width(l.level);
}

uint64_t PrePostScheme::TotalLabelBits() const {
  uint64_t total = 0;
  for (const auto& [serial, l] : labels_) {
    auto width = [](uint64_t v) {
      return static_cast<uint64_t>(std::max(1, 64 - std::countl_zero(v)));
    };
    total += width(l.pre) + width(l.post) + width(l.level);
  }
  return total;
}

std::string PrePostScheme::LabelString(const xml::Node* n) const {
  const PrePostLabel& l = label(n);
  std::ostringstream os;
  os << "(" << l.pre << "," << l.post << "," << l.level << ")";
  return os.str();
}

uint64_t PrePostScheme::RelabelAndCount(xml::Node* root) {
  std::unordered_map<uint32_t, PrePostLabel> fresh;
  Assign(root, &fresh);
  uint64_t changed = 0;
  for (const auto& [serial, l] : fresh) {
    auto it = labels_.find(serial);
    if (it != labels_.end() && !(it->second == l)) ++changed;
  }
  labels_ = std::move(fresh);
  return changed;
}

}  // namespace scheme
}  // namespace ruidx
