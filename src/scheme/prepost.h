// Pre/post (Dietz) interval labels: each node carries its preorder and
// postorder traversal ranks plus its level. a is an ancestor of d iff
// pre(a) < pre(d) and post(a) > post(d) (Dietz 1982, cited as [3] in the
// paper); parenthood additionally requires level(a) + 1 == level(d).
#ifndef RUIDX_SCHEME_PREPOST_H_
#define RUIDX_SCHEME_PREPOST_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "scheme/labeling.h"

namespace ruidx {
namespace scheme {

struct PrePostLabel {
  uint64_t pre = 0;
  uint64_t post = 0;
  uint32_t level = 0;

  bool operator==(const PrePostLabel&) const = default;
};

class PrePostScheme : public LabelingScheme {
 public:
  std::string name() const override { return "prepost"; }
  void Build(xml::Node* root) override;
  bool IsParent(const xml::Node* p, const xml::Node* c) const override;
  bool IsAncestor(const xml::Node* a, const xml::Node* d) const override;
  int CompareOrder(const xml::Node* a, const xml::Node* b) const override;
  uint64_t LabelBits(const xml::Node* n) const override;
  uint64_t TotalLabelBits() const override;
  std::string LabelString(const xml::Node* n) const override;
  uint64_t RelabelAndCount(xml::Node* root) override;

  const PrePostLabel& label(const xml::Node* n) const {
    return labels_.at(n->serial());
  }

 private:
  void Assign(xml::Node* root,
              std::unordered_map<uint32_t, PrePostLabel>* labels) const;

  std::unordered_map<uint32_t, PrePostLabel> labels_;
};

}  // namespace scheme
}  // namespace ruidx

#endif  // RUIDX_SCHEME_PREPOST_H_
