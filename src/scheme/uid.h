// The original UID numbering scheme (Lee, Yoo, Yoon, Berra 1996), the basis
// the paper extends.
//
// The tree is embedded in a complete k-ary tree (k = maximal fan-out).
// Nodes, including virtual ones, are numbered level by level starting from 1
// at the root, so the j-th child (0-based) of node i has identifier
// (i-1)*k + 2 + j and parent(i) = floor((i-2)/k) + 1 — formula (1) of the
// paper. Identifier values grow like k^depth, hence BigUint.
#ifndef RUIDX_SCHEME_UID_H_
#define RUIDX_SCHEME_UID_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "scheme/labeling.h"
#include "util/biguint.h"

namespace ruidx {
namespace scheme {

/// parent(i) = floor((i-2)/k) + 1. Requires i >= 2 (the root has no parent).
BigUint UidParent(const BigUint& id, uint64_t k);

/// Identifier of the j-th (0-based) child of node `id`: (id-1)*k + 2 + j.
BigUint UidChild(const BigUint& id, uint64_t k, uint64_t j);

/// Level (root = 0) of identifier `id` in the complete k-ary enumeration.
/// For k == 1 the identifier itself encodes the level (id - 1).
uint64_t UidLevel(const BigUint& id, uint64_t k);

/// True iff `a` is a proper ancestor of `d` in the k-ary enumeration,
/// decided purely by identifier arithmetic (repeated UidParent).
bool UidIsAncestor(const BigUint& a, const BigUint& d, uint64_t k);

/// Document-order comparison of two identifiers using the Fig. 10 routine:
/// climb both to their lowest common ancestor and compare the child
/// identifiers below it. Ancestors precede descendants. Returns <0, 0, >0.
int UidCompareOrder(const BigUint& a, const BigUint& b, uint64_t k);

/// \brief The original UID as a LabelingScheme over a DOM tree.
class UidScheme : public LabelingScheme {
 public:
  /// With k == 0 the fan-out is taken from the tree at Build time.
  explicit UidScheme(uint64_t k = 0) : requested_k_(k) {}

  std::string name() const override { return "uid"; }
  void Build(xml::Node* root) override;
  bool IsParent(const xml::Node* p, const xml::Node* c) const override;
  bool IsAncestor(const xml::Node* a, const xml::Node* d) const override;
  int CompareOrder(const xml::Node* a, const xml::Node* b) const override;
  uint64_t LabelBits(const xml::Node* n) const override;
  uint64_t TotalLabelBits() const override;
  std::string LabelString(const xml::Node* n) const override;
  uint64_t RelabelAndCount(xml::Node* root) override;

  /// The enumeration fan-out currently in force.
  uint64_t k() const { return k_; }

  const BigUint& label(const xml::Node* n) const;

  /// Largest identifier assigned to a real node.
  const BigUint& max_label() const { return max_label_; }

  /// The node carrying identifier `id`, or nullptr if `id` is virtual.
  xml::Node* NodeByLabel(const BigUint& id) const;

 private:
  void Assign(xml::Node* root,
              std::unordered_map<uint32_t, BigUint>* labels) const;

  uint64_t requested_k_;
  uint64_t k_ = 0;
  std::unordered_map<uint32_t, BigUint> labels_;  // node serial -> identifier
  std::unordered_map<BigUint, xml::Node*, BigUintHash> by_label_;
  BigUint max_label_;
};

}  // namespace scheme
}  // namespace ruidx

#endif  // RUIDX_SCHEME_UID_H_
