// Navigational XPath evaluation over DOM pointers. This is the ground truth
// the identifier-based evaluator is checked against, and the baseline the
// E10 benchmark compares ruid axis construction to.
#ifndef RUIDX_XPATH_DOM_EVAL_H_
#define RUIDX_XPATH_DOM_EVAL_H_

#include <cstdint>
#include <vector>

#include "util/result.h"
#include "xml/dom.h"
#include "xpath/ast.h"

namespace ruidx {
namespace xpath {

class DomEvaluator {
 public:
  /// The document must outlive the evaluator.
  explicit DomEvaluator(xml::Document* doc) : doc_(doc) {}

  /// Evaluates `path` with `context` as the context node (defaults to the
  /// document node, which is what absolute paths expect). The result is in
  /// document order without duplicates.
  Result<std::vector<xml::Node*>> Evaluate(const LocationPath& path,
                                           xml::Node* context = nullptr);

  /// Union evaluation: merged, deduplicated, document order.
  Result<std::vector<xml::Node*>> Evaluate(const UnionExpr& expr,
                                           xml::Node* context = nullptr);

  /// Convenience: parse (union grammar) then evaluate.
  Result<std::vector<xml::Node*>> Evaluate(std::string_view path,
                                           xml::Node* context = nullptr);

  /// Nodes touched while generating axes since construction (work metric
  /// for the benchmarks).
  uint64_t nodes_visited() const { return nodes_visited_; }
  void ResetCounters() { nodes_visited_ = 0; }

 private:
  std::vector<xml::Node*> GenerateAxis(xml::Node* n, Axis axis);
  void SortDocumentOrder(std::vector<xml::Node*>* nodes);

  xml::Document* doc_;
  uint64_t nodes_visited_ = 0;
};

}  // namespace xpath
}  // namespace ruidx

#endif  // RUIDX_XPATH_DOM_EVAL_H_
