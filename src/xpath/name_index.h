// NameIndex: element-name -> node list, in document order.
//
// Sec. 3.5 describes two ways to evaluate a location step "axis::test[C]":
// generate the axis and filter by the condition, or generate the nodes
// satisfying the condition and check which lie on the axis. The second
// needs an index from the condition (here: the element name) to nodes; the
// axis-membership test is then pure identifier arithmetic (IsAncestorId /
// CompareIds), which is where ruid shines. "The first approach is good only
// for the cases in which C is specific" — the evaluator picks per step.
#ifndef RUIDX_XPATH_NAME_INDEX_H_
#define RUIDX_XPATH_NAME_INDEX_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/ruid2_id.h"
#include "xml/dom.h"

namespace ruidx {
namespace xpath {

class NameIndex {
 public:
  /// Indexes every element under `root` by tag name, plus text/comment/PI
  /// nodes under reserved keys. The root must outlive the index: after a
  /// structural update, feed the scheme's UpdateReport to OnUpdate (or call
  /// MarkStale for edits the scheme never saw) and the index rebuilds
  /// itself on the next lookup instead of serving stale — possibly
  /// dangling — postings.
  explicit NameIndex(xml::Node* root) { Build(root); }

  void Build(xml::Node* root);

  /// Update accounting hook (Sec. 3.2): every successful update invalidates
  /// the posting lists — membership changes even when nothing relabels. The
  /// rebuild is deferred to the next lookup so an update storm pays it
  /// once, not per batch operation.
  void OnUpdate(const core::UpdateReport& report);

  /// Invalidation for external mutations (AppendChild + RelabelAndCount).
  void MarkStale() { stale_ = true; }

  /// Elements with this tag, in document order; empty vector when unknown.
  const std::vector<xml::Node*>& Lookup(std::string_view name) const;

  /// All text nodes, in document order.
  const std::vector<xml::Node*>& TextNodes() const {
    EnsureFresh();
    return text_nodes_;
  }

  size_t distinct_names() const {
    EnsureFresh();
    return by_name_.size();
  }

 private:
  void EnsureFresh() const;

  xml::Node* root_ = nullptr;
  mutable bool stale_ = false;
  mutable std::unordered_map<std::string, std::vector<xml::Node*>> by_name_;
  mutable std::vector<xml::Node*> text_nodes_;
  std::vector<xml::Node*> empty_;
};

}  // namespace xpath
}  // namespace ruidx

#endif  // RUIDX_XPATH_NAME_INDEX_H_
