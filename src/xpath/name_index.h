// NameIndex: element-name -> node list, in document order.
//
// Sec. 3.5 describes two ways to evaluate a location step "axis::test[C]":
// generate the axis and filter by the condition, or generate the nodes
// satisfying the condition and check which lie on the axis. The second
// needs an index from the condition (here: the element name) to nodes; the
// axis-membership test is then pure identifier arithmetic (IsAncestorId /
// CompareIds), which is where ruid shines. "The first approach is good only
// for the cases in which C is specific" — the evaluator picks per step.
#ifndef RUIDX_XPATH_NAME_INDEX_H_
#define RUIDX_XPATH_NAME_INDEX_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "xml/dom.h"

namespace ruidx {
namespace xpath {

class NameIndex {
 public:
  /// Indexes every element under `root` by tag name, plus text/comment/PI
  /// nodes under reserved keys. Rebuild after structural updates.
  explicit NameIndex(xml::Node* root) { Build(root); }

  void Build(xml::Node* root);

  /// Elements with this tag, in document order; empty vector when unknown.
  const std::vector<xml::Node*>& Lookup(std::string_view name) const;

  /// All text nodes, in document order.
  const std::vector<xml::Node*>& TextNodes() const { return text_nodes_; }

  size_t distinct_names() const { return by_name_.size(); }

 private:
  std::unordered_map<std::string, std::vector<xml::Node*>> by_name_;
  std::vector<xml::Node*> text_nodes_;
  std::vector<xml::Node*> empty_;
};

}  // namespace xpath
}  // namespace ruidx

#endif  // RUIDX_XPATH_NAME_INDEX_H_
