#include "xpath/structural_join.h"

#include <algorithm>

#include "storage/element_store.h"
#include "xml/dom.h"

namespace ruidx {
namespace xpath {

namespace {

/// One merge pass in document order. `less(a, b)` is strict document-order
/// comparison; `contains(a, d)` is the proper-ancestor test. Both inputs are
/// sorted internally.
template <typename Less, typename Contains>
JoinResult StackJoin(std::vector<xml::Node*> ancestors,
                     std::vector<xml::Node*> descendants, const Less& less,
                     const Contains& contains) {
  std::sort(ancestors.begin(), ancestors.end(), less);
  std::sort(descendants.begin(), descendants.end(), less);
  JoinResult out;
  std::vector<xml::Node*> stack;
  size_t ai = 0;
  for (xml::Node* d : descendants) {
    // Admit every ancestor candidate that starts before d.
    while (ai < ancestors.size() && less(ancestors[ai], d)) {
      xml::Node* a = ancestors[ai++];
      while (!stack.empty() && !contains(stack.back(), a)) stack.pop_back();
      stack.push_back(a);
    }
    // Retire stack entries that do not contain d.
    while (!stack.empty() && !contains(stack.back(), d)) stack.pop_back();
    for (xml::Node* a : stack) out.emplace_back(a, d);
  }
  return out;
}

}  // namespace

namespace {

/// A join input annotated with its root-to-node identifier chain, computed
/// exactly once per input element — the comparators below run on plain
/// vector compares, with no per-comparison rparent() calls or hash lookups.
struct ChainedNode {
  xml::Node* node;
  std::vector<core::Ruid2Id> chain;  // root first, the node itself last
};

std::vector<ChainedNode> AnnotateChains(const core::Ruid2Scheme& scheme,
                                        const std::vector<xml::Node*>& nodes) {
  std::vector<ChainedNode> out;
  out.reserve(nodes.size());
  for (xml::Node* n : nodes) {
    // Ancestors() serves the frame part of the chain from the per-area
    // ancestor-path cache; only the within-area climb costs divisions.
    std::vector<core::Ruid2Id> chain = scheme.Ancestors(scheme.label(n));
    std::reverse(chain.begin(), chain.end());
    chain.push_back(scheme.label(n));
    out.push_back(ChainedNode{n, std::move(chain)});
  }
  return out;
}

/// Document order is lexicographic on sibling locals (Fig. 10 / Lemma 2).
bool ChainLess(const ChainedNode& a, const ChainedNode& b) {
  size_t n = std::min(a.chain.size(), b.chain.size());
  for (size_t i = 0; i < n; ++i) {
    if (!(a.chain[i] == b.chain[i])) return a.chain[i].local < b.chain[i].local;
  }
  return a.chain.size() < b.chain.size();  // ancestors precede descendants
}

/// Ancestorship is the proper-prefix relation on chains.
bool ChainContains(const ChainedNode& a, const ChainedNode& d) {
  if (a.chain.size() >= d.chain.size()) return false;
  for (size_t i = 0; i < a.chain.size(); ++i) {
    if (!(a.chain[i] == d.chain[i])) return false;
  }
  return true;
}

/// The packed fast path stores every root-to-node chain of one join input
/// in a single contiguous arena of packed identifiers — one buffer
/// per input, no per-node std::vector<BigUint> — with (offset, length)
/// entries per node. Comparators run on flat uint64 words.
struct PackedChainSet {
  struct Item {
    xml::Node* node;
    uint32_t offset;
    uint32_t length;
  };
  std::vector<core::PackedRuid2Id> arena;
  std::vector<Item> items;

  const core::PackedRuid2Id* chain(const Item& item) const {
    return arena.data() + item.offset;
  }
};

/// Annotates `nodes` with packed chains. Returns false when any identifier
/// on any chain leaves the packed range (or the fast path is off); the
/// caller then reruns the BigUint annotation for both inputs.
bool AnnotatePackedChains(const core::Ruid2Scheme& scheme,
                          const std::vector<xml::Node*>& nodes,
                          PackedChainSet* out) {
  out->items.reserve(nodes.size());
  std::vector<core::PackedRuid2Id> chain;
  for (xml::Node* n : nodes) {
    const core::Ruid2Id& label = scheme.label(n);
    if (!scheme.AncestorsPacked(label, &chain)) return false;
    core::PackedRuid2Id self;
    if (!core::PackRuid2Id(label, &self)) return false;
    uint32_t offset = static_cast<uint32_t>(out->arena.size());
    // AncestorsPacked is nearest-first; the arena stores root first.
    out->arena.insert(out->arena.end(), chain.rbegin(), chain.rend());
    out->arena.push_back(self);
    out->items.push_back(PackedChainSet::Item{
        n, offset, static_cast<uint32_t>(chain.size() + 1)});
  }
  return true;
}

/// ChainLess on packed arena spans (same order as the BigUint ChainLess).
bool PackedChainLess(const PackedChainSet& sa, const PackedChainSet::Item& a,
                     const PackedChainSet& sb, const PackedChainSet::Item& b) {
  const core::PackedRuid2Id* pa = sa.chain(a);
  const core::PackedRuid2Id* pb = sb.chain(b);
  uint32_t n = std::min(a.length, b.length);
  for (uint32_t i = 0; i < n; ++i) {
    if (pa[i] != pb[i]) return pa[i].local() < pb[i].local();
  }
  return a.length < b.length;  // ancestors precede descendants
}

/// Proper-prefix test on packed arena spans.
bool PackedChainContains(const PackedChainSet& sa,
                         const PackedChainSet::Item& a,
                         const PackedChainSet& sb,
                         const PackedChainSet::Item& b) {
  if (a.length >= b.length) return false;
  const core::PackedRuid2Id* pa = sa.chain(a);
  const core::PackedRuid2Id* pb = sb.chain(b);
  for (uint32_t i = 0; i < a.length; ++i) {
    if (pa[i] != pb[i]) return false;
  }
  return true;
}

JoinResult PackedStackJoin(PackedChainSet anc, PackedChainSet desc) {
  std::sort(anc.items.begin(), anc.items.end(),
            [&](const PackedChainSet::Item& x, const PackedChainSet::Item& y) {
              return PackedChainLess(anc, x, anc, y);
            });
  std::sort(desc.items.begin(), desc.items.end(),
            [&](const PackedChainSet::Item& x, const PackedChainSet::Item& y) {
              return PackedChainLess(desc, x, desc, y);
            });
  JoinResult out;
  out.reserve(desc.items.size());
  std::vector<const PackedChainSet::Item*> stack;
  size_t ai = 0;
  for (const PackedChainSet::Item& d : desc.items) {
    while (ai < anc.items.size() &&
           PackedChainLess(anc, anc.items[ai], desc, d)) {
      const PackedChainSet::Item* a = &anc.items[ai++];
      while (!stack.empty() &&
             !PackedChainContains(anc, *stack.back(), anc, *a)) {
        stack.pop_back();
      }
      stack.push_back(a);
    }
    while (!stack.empty() &&
           !PackedChainContains(anc, *stack.back(), desc, d)) {
      stack.pop_back();
    }
    for (const PackedChainSet::Item* a : stack) {
      out.emplace_back(a->node, d.node);
    }
  }
  return out;
}

}  // namespace

JoinResult StructuralJoinRuid(const core::Ruid2Scheme& scheme,
                              std::vector<xml::Node*> ancestors,
                              std::vector<xml::Node*> descendants) {
  if (core::PackedFastPathEnabled()) {
    PackedChainSet anc, desc;
    if (AnnotatePackedChains(scheme, ancestors, &anc) &&
        AnnotatePackedChains(scheme, descendants, &desc)) {
      return PackedStackJoin(std::move(anc), std::move(desc));
    }
  }
  std::vector<ChainedNode> anc = AnnotateChains(scheme, ancestors);
  std::vector<ChainedNode> desc = AnnotateChains(scheme, descendants);
  std::sort(anc.begin(), anc.end(), ChainLess);
  std::sort(desc.begin(), desc.end(), ChainLess);

  JoinResult out;
  out.reserve(desc.size());  // every surviving descendant emits >= 1 pair
  std::vector<const ChainedNode*> stack;
  size_t ai = 0;
  for (const ChainedNode& d : desc) {
    // Admit every ancestor candidate that starts before d.
    while (ai < anc.size() && ChainLess(anc[ai], d)) {
      const ChainedNode* a = &anc[ai++];
      while (!stack.empty() && !ChainContains(*stack.back(), *a)) {
        stack.pop_back();
      }
      stack.push_back(a);
    }
    // Retire stack entries that do not contain d.
    while (!stack.empty() && !ChainContains(*stack.back(), d)) {
      stack.pop_back();
    }
    for (const ChainedNode* a : stack) out.emplace_back(a->node, d.node);
  }
  return out;
}

JoinResult StructuralJoinRuidByName(const core::Ruid2Scheme& scheme,
                                    const NameIndex& index,
                                    std::string_view ancestor_name,
                                    std::string_view descendant_name) {
  return StructuralJoinRuid(scheme, index.Lookup(ancestor_name),
                            index.Lookup(descendant_name));
}

Result<JoinResult> StructuralJoinRuidFromStore(
    const core::Ruid2Scheme& scheme, storage::ElementStore* store,
    std::string_view ancestor_name, std::string_view descendant_name) {
  auto gather = [&](std::string_view name,
                    std::vector<xml::Node*>* out) -> Status {
    return store->ScanNameTerm(name, [&](const storage::ElementRecord& rec) {
      xml::Node* node = scheme.NodeById(rec.id);
      if (node != nullptr) out->push_back(node);
      return true;
    });
  };
  std::vector<xml::Node*> ancestors, descendants;
  RUIDX_RETURN_NOT_OK(gather(ancestor_name, &ancestors));
  RUIDX_RETURN_NOT_OK(gather(descendant_name, &descendants));
  return StructuralJoinRuid(scheme, std::move(ancestors),
                            std::move(descendants));
}

Result<JoinResult> StructuralJoinRuidFromSnapshot(
    const core::Ruid2Scheme& scheme, storage::StoreSnapshot* snapshot,
    std::string_view ancestor_name, std::string_view descendant_name) {
  auto gather = [&](std::string_view name,
                    std::vector<xml::Node*>* out) -> Status {
    return snapshot->ScanNameTerm(name,
                                  [&](const storage::ElementRecord& rec) {
                                    xml::Node* node = scheme.NodeById(rec.id);
                                    if (node != nullptr) out->push_back(node);
                                    return true;
                                  });
  };
  std::vector<xml::Node*> ancestors, descendants;
  RUIDX_RETURN_NOT_OK(gather(ancestor_name, &ancestors));
  RUIDX_RETURN_NOT_OK(gather(descendant_name, &descendants));
  return StructuralJoinRuid(scheme, std::move(ancestors),
                            std::move(descendants));
}

JoinResult StructuralJoinInterval(const scheme::XissScheme& scheme,
                                  std::vector<xml::Node*> ancestors,
                                  std::vector<xml::Node*> descendants) {
  auto less = [&scheme](const xml::Node* a, const xml::Node* b) {
    return scheme.label(a).order < scheme.label(b).order;
  };
  auto contains = [&scheme](const xml::Node* a, const xml::Node* d) {
    return scheme.IsAncestor(a, d);
  };
  return StackJoin(std::move(ancestors), std::move(descendants), less,
                   contains);
}

JoinResult StructuralJoinNestedLoop(std::vector<xml::Node*> ancestors,
                                    std::vector<xml::Node*> descendants) {
  JoinResult out;
  for (xml::Node* d : descendants) {
    for (xml::Node* a : ancestors) {
      if (d->HasAncestor(a)) out.emplace_back(a, d);
    }
  }
  return out;
}

}  // namespace xpath
}  // namespace ruidx
