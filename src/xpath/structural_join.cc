#include "xpath/structural_join.h"

#include <algorithm>
#include <unordered_map>

#include "xml/dom.h"

namespace ruidx {
namespace xpath {

namespace {

/// One merge pass in document order. `less(a, b)` is strict document-order
/// comparison; `contains(a, d)` is the proper-ancestor test. Both inputs are
/// sorted internally.
template <typename Less, typename Contains>
JoinResult StackJoin(std::vector<xml::Node*> ancestors,
                     std::vector<xml::Node*> descendants, const Less& less,
                     const Contains& contains) {
  std::sort(ancestors.begin(), ancestors.end(), less);
  std::sort(descendants.begin(), descendants.end(), less);
  JoinResult out;
  std::vector<xml::Node*> stack;
  size_t ai = 0;
  for (xml::Node* d : descendants) {
    // Admit every ancestor candidate that starts before d.
    while (ai < ancestors.size() && less(ancestors[ai], d)) {
      xml::Node* a = ancestors[ai++];
      while (!stack.empty() && !contains(stack.back(), a)) stack.pop_back();
      stack.push_back(a);
    }
    // Retire stack entries that do not contain d.
    while (!stack.empty() && !contains(stack.back(), d)) stack.pop_back();
    for (xml::Node* a : stack) out.emplace_back(a, d);
  }
  return out;
}

}  // namespace

JoinResult StructuralJoinRuid(const core::Ruid2Scheme& scheme,
                              std::vector<xml::Node*> ancestors,
                              std::vector<xml::Node*> descendants) {
  // Derive each node's root-to-node identifier chain once, by repeated
  // rparent (identifier arithmetic only). Document order is lexicographic
  // on sibling locals (Fig. 10 / Lemma 2) and ancestorship is the proper-
  // prefix relation, so the join itself runs on plain vector compares.
  std::unordered_map<const xml::Node*, std::vector<core::Ruid2Id>> chains;
  auto chain_of = [&](xml::Node* n) -> const std::vector<core::Ruid2Id>& {
    auto it = chains.find(n);
    if (it != chains.end()) return it->second;
    std::vector<core::Ruid2Id> chain = scheme.Ancestors(scheme.label(n));
    std::reverse(chain.begin(), chain.end());
    chain.push_back(scheme.label(n));
    return chains.emplace(n, std::move(chain)).first->second;
  };
  for (xml::Node* n : ancestors) chain_of(n);
  for (xml::Node* n : descendants) chain_of(n);

  auto less = [&](xml::Node* a, xml::Node* b) {
    const auto& ca = chains.at(a);
    const auto& cb = chains.at(b);
    size_t n = std::min(ca.size(), cb.size());
    for (size_t i = 0; i < n; ++i) {
      if (!(ca[i] == cb[i])) return ca[i].local < cb[i].local;
    }
    return ca.size() < cb.size();  // ancestors precede descendants
  };
  auto contains = [&](xml::Node* a, xml::Node* d) {
    const auto& ca = chains.at(a);
    const auto& cd = chains.at(d);
    if (ca.size() >= cd.size()) return false;
    for (size_t i = 0; i < ca.size(); ++i) {
      if (!(ca[i] == cd[i])) return false;
    }
    return true;
  };
  return StackJoin(std::move(ancestors), std::move(descendants), less,
                   contains);
}

JoinResult StructuralJoinInterval(const scheme::XissScheme& scheme,
                                  std::vector<xml::Node*> ancestors,
                                  std::vector<xml::Node*> descendants) {
  auto less = [&scheme](const xml::Node* a, const xml::Node* b) {
    return scheme.label(a).order < scheme.label(b).order;
  };
  auto contains = [&scheme](const xml::Node* a, const xml::Node* d) {
    return scheme.IsAncestor(a, d);
  };
  return StackJoin(std::move(ancestors), std::move(descendants), less,
                   contains);
}

JoinResult StructuralJoinNestedLoop(std::vector<xml::Node*> ancestors,
                                    std::vector<xml::Node*> descendants) {
  JoinResult out;
  for (xml::Node* d : descendants) {
    for (xml::Node* a : ancestors) {
      if (d->HasAncestor(a)) out.emplace_back(a, d);
    }
  }
  return out;
}

}  // namespace xpath
}  // namespace ruidx
