#include "xpath/structural_join.h"

#include <algorithm>

#include "xml/dom.h"

namespace ruidx {
namespace xpath {

namespace {

/// One merge pass in document order. `less(a, b)` is strict document-order
/// comparison; `contains(a, d)` is the proper-ancestor test. Both inputs are
/// sorted internally.
template <typename Less, typename Contains>
JoinResult StackJoin(std::vector<xml::Node*> ancestors,
                     std::vector<xml::Node*> descendants, const Less& less,
                     const Contains& contains) {
  std::sort(ancestors.begin(), ancestors.end(), less);
  std::sort(descendants.begin(), descendants.end(), less);
  JoinResult out;
  std::vector<xml::Node*> stack;
  size_t ai = 0;
  for (xml::Node* d : descendants) {
    // Admit every ancestor candidate that starts before d.
    while (ai < ancestors.size() && less(ancestors[ai], d)) {
      xml::Node* a = ancestors[ai++];
      while (!stack.empty() && !contains(stack.back(), a)) stack.pop_back();
      stack.push_back(a);
    }
    // Retire stack entries that do not contain d.
    while (!stack.empty() && !contains(stack.back(), d)) stack.pop_back();
    for (xml::Node* a : stack) out.emplace_back(a, d);
  }
  return out;
}

}  // namespace

namespace {

/// A join input annotated with its root-to-node identifier chain, computed
/// exactly once per input element — the comparators below run on plain
/// vector compares, with no per-comparison rparent() calls or hash lookups.
struct ChainedNode {
  xml::Node* node;
  std::vector<core::Ruid2Id> chain;  // root first, the node itself last
};

std::vector<ChainedNode> AnnotateChains(const core::Ruid2Scheme& scheme,
                                        const std::vector<xml::Node*>& nodes) {
  std::vector<ChainedNode> out;
  out.reserve(nodes.size());
  for (xml::Node* n : nodes) {
    // Ancestors() serves the frame part of the chain from the per-area
    // ancestor-path cache; only the within-area climb costs divisions.
    std::vector<core::Ruid2Id> chain = scheme.Ancestors(scheme.label(n));
    std::reverse(chain.begin(), chain.end());
    chain.push_back(scheme.label(n));
    out.push_back(ChainedNode{n, std::move(chain)});
  }
  return out;
}

/// Document order is lexicographic on sibling locals (Fig. 10 / Lemma 2).
bool ChainLess(const ChainedNode& a, const ChainedNode& b) {
  size_t n = std::min(a.chain.size(), b.chain.size());
  for (size_t i = 0; i < n; ++i) {
    if (!(a.chain[i] == b.chain[i])) return a.chain[i].local < b.chain[i].local;
  }
  return a.chain.size() < b.chain.size();  // ancestors precede descendants
}

/// Ancestorship is the proper-prefix relation on chains.
bool ChainContains(const ChainedNode& a, const ChainedNode& d) {
  if (a.chain.size() >= d.chain.size()) return false;
  for (size_t i = 0; i < a.chain.size(); ++i) {
    if (!(a.chain[i] == d.chain[i])) return false;
  }
  return true;
}

}  // namespace

JoinResult StructuralJoinRuid(const core::Ruid2Scheme& scheme,
                              std::vector<xml::Node*> ancestors,
                              std::vector<xml::Node*> descendants) {
  std::vector<ChainedNode> anc = AnnotateChains(scheme, ancestors);
  std::vector<ChainedNode> desc = AnnotateChains(scheme, descendants);
  std::sort(anc.begin(), anc.end(), ChainLess);
  std::sort(desc.begin(), desc.end(), ChainLess);

  JoinResult out;
  out.reserve(desc.size());  // every surviving descendant emits >= 1 pair
  std::vector<const ChainedNode*> stack;
  size_t ai = 0;
  for (const ChainedNode& d : desc) {
    // Admit every ancestor candidate that starts before d.
    while (ai < anc.size() && ChainLess(anc[ai], d)) {
      const ChainedNode* a = &anc[ai++];
      while (!stack.empty() && !ChainContains(*stack.back(), *a)) {
        stack.pop_back();
      }
      stack.push_back(a);
    }
    // Retire stack entries that do not contain d.
    while (!stack.empty() && !ChainContains(*stack.back(), d)) {
      stack.pop_back();
    }
    for (const ChainedNode* a : stack) out.emplace_back(a->node, d.node);
  }
  return out;
}

JoinResult StructuralJoinInterval(const scheme::XissScheme& scheme,
                                  std::vector<xml::Node*> ancestors,
                                  std::vector<xml::Node*> descendants) {
  auto less = [&scheme](const xml::Node* a, const xml::Node* b) {
    return scheme.label(a).order < scheme.label(b).order;
  };
  auto contains = [&scheme](const xml::Node* a, const xml::Node* d) {
    return scheme.IsAncestor(a, d);
  };
  return StackJoin(std::move(ancestors), std::move(descendants), less,
                   contains);
}

JoinResult StructuralJoinNestedLoop(std::vector<xml::Node*> ancestors,
                                    std::vector<xml::Node*> descendants) {
  JoinResult out;
  for (xml::Node* d : descendants) {
    for (xml::Node* a : ancestors) {
      if (d->HasAncestor(a)) out.emplace_back(a, d);
    }
  }
  return out;
}

}  // namespace xpath
}  // namespace ruidx
