#include "xpath/name_index.h"

namespace ruidx {
namespace xpath {

void NameIndex::Build(xml::Node* root) {
  root_ = root;
  stale_ = false;
  by_name_.clear();
  text_nodes_.clear();
  xml::PreorderTraverse(root, [&](xml::Node* n, int) {
    if (n->is_element()) {
      by_name_[n->name()].push_back(n);
    } else if (n->is_text()) {
      text_nodes_.push_back(n);
    }
    return true;
  });
}

void NameIndex::OnUpdate(const core::UpdateReport& report) {
  // Unlike the ancestor-path cache (which survives updates that relabel
  // nothing), a membership index is invalidated by every successful update:
  // the inserted or removed node itself changes posting lists even when the
  // report counts zero relabels.
  (void)report;
  stale_ = true;
}

void NameIndex::EnsureFresh() const {
  if (stale_ && root_ != nullptr) {
    const_cast<NameIndex*>(this)->Build(root_);
  }
}

const std::vector<xml::Node*>& NameIndex::Lookup(std::string_view name) const {
  EnsureFresh();
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? empty_ : it->second;
}

}  // namespace xpath
}  // namespace ruidx
