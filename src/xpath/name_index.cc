#include "xpath/name_index.h"

namespace ruidx {
namespace xpath {

void NameIndex::Build(xml::Node* root) {
  by_name_.clear();
  text_nodes_.clear();
  xml::PreorderTraverse(root, [&](xml::Node* n, int) {
    if (n->is_element()) {
      by_name_[n->name()].push_back(n);
    } else if (n->is_text()) {
      text_nodes_.push_back(n);
    }
    return true;
  });
}

const std::vector<xml::Node*>& NameIndex::Lookup(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? empty_ : it->second;
}

}  // namespace xpath
}  // namespace ruidx
