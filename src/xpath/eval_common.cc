#include "xpath/eval_common.h"

#include <unordered_set>

namespace ruidx {
namespace xpath {

bool MatchesTest(const xml::Node* n, const NodeTest& test, Axis axis) {
  const bool attribute_axis = axis == Axis::kAttribute;
  switch (test.kind) {
    case NodeTestKind::kName:
      if (attribute_axis) return n->is_attribute() && n->name() == test.name;
      return n->is_element() && n->name() == test.name;
    case NodeTestKind::kAnyName:
      return attribute_axis ? n->is_attribute() : n->is_element();
    case NodeTestKind::kAnyNode:
      return attribute_axis ? n->is_attribute() : !n->is_attribute();
    case NodeTestKind::kText:
      return n->type() == xml::NodeType::kText;
    case NodeTestKind::kComment:
      return n->type() == xml::NodeType::kComment;
    case NodeTestKind::kPi:
      return n->type() == xml::NodeType::kProcessingInstruction;
  }
  return false;
}

bool MatchesPredicate(const xml::Node* n, const Predicate& p) {
  switch (p.kind) {
    case Predicate::Kind::kPosition:
      return true;  // handled positionally in ApplyPredicates
    case Predicate::Kind::kAttrExists:
      return n->GetAttribute(p.name) != nullptr;
    case Predicate::Kind::kAttrEquals: {
      const std::string* v = n->GetAttribute(p.name);
      return v != nullptr && *v == p.value;
    }
    case Predicate::Kind::kChildExists:
      return n->FirstChildElement(p.name) != nullptr;
    case Predicate::Kind::kTextEquals:
      for (const xml::Node* c : n->children()) {
        if (c->is_text() && c->value() == p.value) return true;
      }
      return false;
  }
  return false;
}

std::vector<xml::Node*> ApplyPredicates(std::vector<xml::Node*> nodes,
                                        const std::vector<Predicate>& preds) {
  for (const Predicate& p : preds) {
    if (p.kind == Predicate::Kind::kPosition) {
      if (p.position == 0 || p.position > nodes.size()) {
        nodes.clear();
      } else {
        xml::Node* keep = nodes[p.position - 1];
        nodes.assign(1, keep);
      }
      continue;
    }
    std::vector<xml::Node*> kept;
    kept.reserve(nodes.size());
    for (xml::Node* n : nodes) {
      if (MatchesPredicate(n, p)) kept.push_back(n);
    }
    nodes = std::move(kept);
  }
  return nodes;
}

std::vector<xml::Node*> DedupNodes(std::vector<xml::Node*> nodes) {
  std::unordered_set<const xml::Node*> seen;
  std::vector<xml::Node*> out;
  out.reserve(nodes.size());
  for (xml::Node* n : nodes) {
    if (seen.insert(n).second) out.push_back(n);
  }
  return out;
}

}  // namespace xpath
}  // namespace ruidx
