// Identifier-based XPath evaluation (Sec. 3.5 and Sec. 4 "Query
// evaluation"): axes are generated with the ruid routines — rparent,
// rancestor, rchildren, rdescendant, rpsibling, rfsibling, rpreceding,
// rfollowing — instead of pointer navigation. The attribute axis goes
// through the owner element (attributes are reached from, not labeled by,
// the numbering scheme, matching the paper's data model).
#ifndef RUIDX_XPATH_RUID_EVAL_H_
#define RUIDX_XPATH_RUID_EVAL_H_

#include <cstdint>
#include <vector>

#include "core/axes.h"
#include "core/ruid2.h"
#include "util/result.h"
#include "xml/dom.h"
#include "xpath/ast.h"
#include "xpath/name_index.h"
#include "xpath/path_index.h"

namespace ruidx {
namespace xpath {

class RuidEvaluator {
 public:
  /// The document and scheme must outlive the evaluator; the scheme must be
  /// built over the document's tree. Re-create (or Refresh) after updates.
  RuidEvaluator(xml::Document* doc, const core::Ruid2Scheme* scheme);

  /// Evaluates `path` against the context node (defaults to the document
  /// node). Result in document order (by identifier comparison), deduped.
  Result<std::vector<xml::Node*>> Evaluate(const LocationPath& path,
                                           xml::Node* context = nullptr);

  /// Union evaluation: merged, deduplicated, document order.
  Result<std::vector<xml::Node*>> Evaluate(const UnionExpr& expr,
                                           xml::Node* context = nullptr);

  /// Convenience: parse (union grammar) then evaluate.
  Result<std::vector<xml::Node*>> Evaluate(std::string_view path,
                                           xml::Node* context = nullptr);

  /// Rebuilds the axis index after a structural update.
  void Refresh() { axes_.Refresh(); }

  /// Enables the Sec. 3.5 "first approach" for selective steps: when a step
  /// has a name test and one of the big axes (descendant, ancestor,
  /// preceding, following), the evaluator takes the nodes with that name
  /// from the index and keeps those whose identifier passes the axis test —
  /// pure arithmetic per candidate. The index must outlive the evaluator
  /// and be rebuilt after updates. Pass nullptr to disable.
  void SetNameIndex(const NameIndex* index) { name_index_ = index; }

  /// Enables single-lookup answering of fully named absolute child chains
  /// (/a/b/c): the chain's tag-path term keys one posting list, so no step
  /// loop runs at all. The index must outlive the evaluator and be kept
  /// fresh via PathIndex::OnUpdate. Pass nullptr to disable.
  void SetPathIndex(const PathIndex* index) { path_index_ = index; }

  /// Identifiers materialized while generating axes (work metric).
  uint64_t ids_generated() const { return ids_generated_; }
  void ResetCounters() { ids_generated_ = 0; }

 private:
  std::vector<xml::Node*> GenerateAxis(xml::Node* n, Axis axis);

  /// True when the step qualifies for name-index candidate filtering and
  /// the Sec. 3.5 selectivity rule favours it ("the first approach is good
  /// only for the cases in which C is specific"). A descendant step whose
  /// whole context is the document node is always index-answered: the
  /// posting list IS the result, no per-candidate arithmetic.
  bool StepUsesIndex(const Step& step,
                     const std::vector<xml::Node*>& context) const;

  /// The Sec. 3.5 "element1/*/element2" trick: an absolute all-child-axis
  /// path with a name test at the end is answered backwards — take the
  /// candidates from the index and climb with rparent, checking each level's
  /// name test — without scanning any collection. Returns true and fills
  /// *out when the rewrite applies.
  bool TryChildChainBackwards(const std::vector<Step>& steps,
                              const xml::Node* context,
                              std::vector<xml::Node*>* out);

  /// Answers an absolute all-named child chain (/a/b/c, no predicates)
  /// straight from the path index: one term composition, one posting-list
  /// lookup. Strictly cheaper than the backwards climb, which this
  /// pre-empts when both rewrites apply. Returns true and fills *out when
  /// the rewrite applies.
  bool TryPathIndexChain(const std::vector<Step>& steps,
                         const xml::Node* context,
                         std::vector<xml::Node*>* out);

  /// Evaluates one indexable step over the whole context set.
  std::vector<xml::Node*> EvalStepViaIndex(
      const std::vector<xml::Node*>& context, const Step& step);

  /// Sorts into document order by identifier comparison.
  void SortDocumentOrder(std::vector<xml::Node*>* nodes) const;

  xml::Document* doc_;
  const core::Ruid2Scheme* scheme_;
  core::RuidAxes axes_;
  const NameIndex* name_index_ = nullptr;
  const PathIndex* path_index_ = nullptr;
  uint64_t ids_generated_ = 0;
};

}  // namespace xpath
}  // namespace ruidx

#endif  // RUIDX_XPATH_RUID_EVAL_H_
