#include "xpath/parser.h"

#include <cctype>
#include <sstream>

namespace ruidx {
namespace xpath {

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kSelf:
      return "self";
    case Axis::kAttribute:
      return "attribute";
    case Axis::kFollowing:
      return "following";
    case Axis::kPreceding:
      return "preceding";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
  }
  return "?";
}

bool IsReverseAxis(Axis axis) {
  return axis == Axis::kParent || axis == Axis::kAncestor ||
         axis == Axis::kAncestorOrSelf || axis == Axis::kPreceding ||
         axis == Axis::kPrecedingSibling;
}

std::string LocationPath::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i > 0 || absolute) os << "/";
    const Step& s = steps[i];
    os << AxisName(s.axis) << "::";
    switch (s.test.kind) {
      case NodeTestKind::kName:
        os << s.test.name;
        break;
      case NodeTestKind::kAnyName:
        os << "*";
        break;
      case NodeTestKind::kAnyNode:
        os << "node()";
        break;
      case NodeTestKind::kText:
        os << "text()";
        break;
      case NodeTestKind::kComment:
        os << "comment()";
        break;
      case NodeTestKind::kPi:
        os << "processing-instruction()";
        break;
    }
    for (const Predicate& p : s.predicates) {
      os << "[";
      switch (p.kind) {
        case Predicate::Kind::kPosition:
          os << p.position;
          break;
        case Predicate::Kind::kAttrExists:
          os << "@" << p.name;
          break;
        case Predicate::Kind::kAttrEquals:
          os << "@" << p.name << "=\"" << p.value << "\"";
          break;
        case Predicate::Kind::kChildExists:
          os << p.name;
          break;
        case Predicate::Kind::kTextEquals:
          os << "text()=\"" << p.value << "\"";
          break;
      }
      os << "]";
    }
  }
  return os.str();
}

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<LocationPath> Run() {
    LocationPath path;
    SkipSpace();
    if (AtEnd()) return Error("empty path");
    if (Peek() == '/') {
      path.absolute = true;
      if (LookingAt("//")) {
        // Leading "//": descendant-or-self from the root.
        AdvanceBy(2);
        path.steps.push_back(DescendantOrSelfStep());
      } else {
        Advance();
        SkipSpace();
        if (AtEnd()) return path;  // bare "/" selects the root
      }
    }
    for (;;) {
      RUIDX_ASSIGN_OR_RETURN(Step step, ParseStep());
      path.steps.push_back(std::move(step));
      SkipSpace();
      if (AtEnd()) break;
      if (LookingAt("//")) {
        AdvanceBy(2);
        path.steps.push_back(DescendantOrSelfStep());
      } else if (Peek() == '/') {
        Advance();
      } else {
        return Error("expected '/' between steps");
      }
    }
    return path;
  }

 private:
  static Step DescendantOrSelfStep() {
    Step s;
    s.axis = Axis::kDescendantOrSelf;
    s.test.kind = NodeTestKind::kAnyNode;
    return s;
  }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  void Advance() { ++pos_; }
  void AdvanceBy(size_t n) { pos_ += n; }
  bool LookingAt(std::string_view s) const {
    return input_.compare(pos_, s.size(), s) == 0;
  }
  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  Status Error(const std::string& msg) const {
    std::ostringstream os;
    os << msg << " at offset " << pos_ << " in location path";
    return Status::ParseError(os.str());
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Error("expected a name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    // QName: a single ':' joins prefix and local part; '::' belongs to the
    // axis syntax and is left alone.
    if (!AtEnd() && Peek() == ':' && pos_ + 1 < input_.size() &&
        input_[pos_ + 1] != ':' && IsNameStart(input_[pos_ + 1])) {
      Advance();
      while (!AtEnd() && IsNameChar(Peek())) Advance();
    }
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<Step> ParseStep() {
    SkipSpace();
    Step step;
    if (LookingAt("..")) {
      AdvanceBy(2);
      step.axis = Axis::kParent;
      step.test.kind = NodeTestKind::kAnyNode;
      return step;
    }
    if (!AtEnd() && Peek() == '.') {
      Advance();
      step.axis = Axis::kSelf;
      step.test.kind = NodeTestKind::kAnyNode;
      return step;
    }
    if (!AtEnd() && Peek() == '@') {
      Advance();
      step.axis = Axis::kAttribute;
      RUIDX_RETURN_NOT_OK(ParseNodeTest(&step.test));
      RUIDX_RETURN_NOT_OK(ParsePredicates(&step.predicates));
      return step;
    }
    // Optional explicit axis.
    size_t save = pos_;
    if (!AtEnd() && IsNameStart(Peek())) {
      auto name = ParseName();
      if (name.ok() && LookingAt("::")) {
        AdvanceBy(2);
        RUIDX_ASSIGN_OR_RETURN(step.axis, AxisFromName(*name));
      } else {
        pos_ = save;  // it was a node test, not an axis
      }
    }
    RUIDX_RETURN_NOT_OK(ParseNodeTest(&step.test));
    RUIDX_RETURN_NOT_OK(ParsePredicates(&step.predicates));
    return step;
  }

  Result<Axis> AxisFromName(const std::string& name) {
    if (name == "child") return Axis::kChild;
    if (name == "descendant") return Axis::kDescendant;
    if (name == "descendant-or-self") return Axis::kDescendantOrSelf;
    if (name == "parent") return Axis::kParent;
    if (name == "ancestor") return Axis::kAncestor;
    if (name == "ancestor-or-self") return Axis::kAncestorOrSelf;
    if (name == "self") return Axis::kSelf;
    if (name == "attribute") return Axis::kAttribute;
    if (name == "following") return Axis::kFollowing;
    if (name == "preceding") return Axis::kPreceding;
    if (name == "following-sibling") return Axis::kFollowingSibling;
    if (name == "preceding-sibling") return Axis::kPrecedingSibling;
    return Error("unknown axis '" + name + "'");
  }

  Status ParseNodeTest(NodeTest* test) {
    SkipSpace();
    if (AtEnd()) return Error("expected a node test");
    if (Peek() == '*') {
      Advance();
      test->kind = NodeTestKind::kAnyName;
      return Status::OK();
    }
    RUIDX_ASSIGN_OR_RETURN(std::string name, ParseName());
    if (LookingAt("()")) {
      AdvanceBy(2);
      if (name == "node") {
        test->kind = NodeTestKind::kAnyNode;
      } else if (name == "text") {
        test->kind = NodeTestKind::kText;
      } else if (name == "comment") {
        test->kind = NodeTestKind::kComment;
      } else if (name == "processing-instruction") {
        test->kind = NodeTestKind::kPi;
      } else {
        return Error("unknown node type test '" + name + "()'");
      }
      return Status::OK();
    }
    test->kind = NodeTestKind::kName;
    test->name = std::move(name);
    return Status::OK();
  }

  Status ParsePredicates(std::vector<Predicate>* out) {
    for (;;) {
      SkipSpace();
      if (AtEnd() || Peek() != '[') return Status::OK();
      Advance();
      SkipSpace();
      Predicate p;
      if (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        p.kind = Predicate::Kind::kPosition;
        uint64_t v = 0;
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          v = v * 10 + static_cast<uint64_t>(Peek() - '0');
          Advance();
        }
        if (v == 0) return Error("positions are 1-based");
        p.position = v;
      } else if (!AtEnd() && Peek() == '@') {
        Advance();
        RUIDX_ASSIGN_OR_RETURN(p.name, ParseName());
        SkipSpace();
        if (!AtEnd() && Peek() == '=') {
          Advance();
          RUIDX_ASSIGN_OR_RETURN(p.value, ParseLiteral());
          p.kind = Predicate::Kind::kAttrEquals;
        } else {
          p.kind = Predicate::Kind::kAttrExists;
        }
      } else if (LookingAt("text()")) {
        AdvanceBy(6);
        SkipSpace();
        if (AtEnd() || Peek() != '=') {
          return Error("expected '=' after text() in predicate");
        }
        Advance();
        RUIDX_ASSIGN_OR_RETURN(p.value, ParseLiteral());
        p.kind = Predicate::Kind::kTextEquals;
      } else if (!AtEnd() && IsNameStart(Peek())) {
        RUIDX_ASSIGN_OR_RETURN(p.name, ParseName());
        p.kind = Predicate::Kind::kChildExists;
      } else {
        return Error("unsupported predicate");
      }
      SkipSpace();
      if (AtEnd() || Peek() != ']') return Error("expected ']'");
      Advance();
      out->push_back(std::move(p));
    }
  }

  Result<std::string> ParseLiteral() {
    SkipSpace();
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected a quoted literal");
    }
    char quote = Peek();
    Advance();
    size_t start = pos_;
    while (!AtEnd() && Peek() != quote) Advance();
    if (AtEnd()) return Error("unterminated literal");
    std::string value(input_.substr(start, pos_ - start));
    Advance();
    return value;
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<LocationPath> ParsePath(std::string_view input) {
  Parser parser(input);
  return parser.Run();
}

std::string UnionExpr::ToString() const {
  std::string out;
  for (size_t i = 0; i < paths.size(); ++i) {
    if (i > 0) out += " | ";
    out += paths[i].ToString();
  }
  return out;
}

Result<UnionExpr> ParseUnion(std::string_view input) {
  UnionExpr expr;
  size_t start = 0;
  char quote = '\0';
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i < input.size() && quote != '\0') {
      if (input[i] == quote) quote = '\0';
      continue;
    }
    if (i < input.size() && (input[i] == '"' || input[i] == '\'')) {
      quote = input[i];
      continue;
    }
    if (i == input.size() || input[i] == '|') {
      RUIDX_ASSIGN_OR_RETURN(LocationPath path,
                             ParsePath(input.substr(start, i - start)));
      expr.paths.push_back(std::move(path));
      start = i + 1;
    }
  }
  if (quote != '\0') {
    return Status::ParseError("unterminated literal in union expression");
  }
  return expr;
}

}  // namespace xpath
}  // namespace ruidx
