#include "xpath/path_index.h"

#include "storage/secondary_index.h"

namespace ruidx {
namespace xpath {

void PathIndex::Build(xml::Node* root) {
  root_ = root;
  stale_ = false;
  by_term_.clear();
  // Preorder keeps the parent's term one slot up a depth-indexed stack —
  // the same composition BulkLoad uses for the persistent path index, so
  // the two agree term for term.
  std::vector<uint64_t> term_stack;
  xml::PreorderTraverse(root, [&](xml::Node* n, int depth) {
    uint64_t term =
        depth == 0 ? storage::RootPathTerm(n->name())
                   : storage::ExtendPathTerm(term_stack[depth - 1], n->name());
    term_stack.resize(depth + 1);
    term_stack[depth] = term;
    by_term_[term].push_back(n);
    return true;
  });
}

void PathIndex::OnUpdate(const core::UpdateReport& report) {
  // Membership changes on every successful update (see NameIndex::OnUpdate).
  (void)report;
  stale_ = true;
}

void PathIndex::EnsureFresh() const {
  if (stale_ && root_ != nullptr) {
    const_cast<PathIndex*>(this)->Build(root_);
  }
}

std::vector<xml::Node*> PathIndex::LookupPath(
    const std::vector<std::string_view>& names) const {
  if (names.empty()) return {};
  uint64_t term = storage::RootPathTerm(names[0]);
  for (size_t i = 1; i < names.size(); ++i) {
    term = storage::ExtendPathTerm(term, names[i]);
  }
  std::vector<xml::Node*> out;
  for (xml::Node* n : LookupTerm(term)) {
    // Climb the tag chain to rule out a term collision: the climb must
    // consume every query name and land exactly on the indexed root.
    const xml::Node* walk = n;
    bool matches = true;
    for (size_t i = names.size(); i-- > 0;) {
      if (walk == nullptr || walk->name() != names[i]) {
        matches = false;
        break;
      }
      if (i == 0) {
        matches = walk == root_;
        break;
      }
      walk = walk->parent();
    }
    if (matches) out.push_back(n);
  }
  return out;
}

const std::vector<xml::Node*>& PathIndex::LookupTerm(uint64_t term) const {
  EnsureFresh();
  auto it = by_term_.find(term);
  return it == by_term_.end() ? empty_ : it->second;
}

size_t PathIndex::distinct_paths() const {
  EnsureFresh();
  return by_term_.size();
}

}  // namespace xpath
}  // namespace ruidx
