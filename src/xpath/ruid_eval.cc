#include "xpath/ruid_eval.h"

#include <algorithm>

#include "xpath/eval_common.h"
#include "xpath/parser.h"

namespace ruidx {
namespace xpath {

RuidEvaluator::RuidEvaluator(xml::Document* doc,
                             const core::Ruid2Scheme* scheme)
    : doc_(doc), scheme_(scheme), axes_(scheme) {}

std::vector<xml::Node*> RuidEvaluator::GenerateAxis(xml::Node* n, Axis axis) {
  std::vector<xml::Node*> out;
  // The document node is not labeled; its child/descendant axes hop to the
  // tree root and continue with identifier arithmetic from there.
  if (n->is_document()) {
    switch (axis) {
      case Axis::kChild:
        out = n->children();
        break;
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf:
        if (axis == Axis::kDescendantOrSelf) out.push_back(n);
        for (xml::Node* c : n->children()) {
          out.push_back(c);
          if (scheme_->HasLabel(c)) {
            auto sub = axes_.Descendants(scheme_->label(c));
            out.insert(out.end(), sub.begin(), sub.end());
          }
        }
        break;
      default:
        break;  // no parent/siblings/etc. for the document node
    }
    ids_generated_ += out.size();
    return out;
  }
  if (n->is_attribute()) {
    // Only the parent axis leads anywhere from an attribute.
    if (axis == Axis::kParent || axis == Axis::kAncestorOrSelf ||
        axis == Axis::kAncestor) {
      xml::Node* owner = n->parent();
      if (axis == Axis::kAncestorOrSelf) out.push_back(n);
      if (axis == Axis::kParent) {
        out.push_back(owner);
      } else if (owner != nullptr && scheme_->HasLabel(owner)) {
        out.push_back(owner);
        auto up = axes_.Ancestors(scheme_->label(owner));
        out.insert(out.end(), up.begin(), up.end());
      }
    } else if (axis == Axis::kSelf) {
      out.push_back(n);
    }
    ids_generated_ += out.size();
    return out;
  }

  const core::Ruid2Id& id = scheme_->label(n);
  switch (axis) {
    case Axis::kSelf:
      out.push_back(n);
      break;
    case Axis::kAttribute:
      out = n->attributes();
      break;
    case Axis::kChild:
      out = axes_.Children(id);
      break;
    case Axis::kDescendant:
      out = axes_.Descendants(id);
      break;
    case Axis::kDescendantOrSelf:
      out.push_back(n);
      {
        auto sub = axes_.Descendants(id);
        out.insert(out.end(), sub.begin(), sub.end());
      }
      break;
    case Axis::kParent: {
      auto p = scheme_->Parent(id);
      if (p.ok()) {
        xml::Node* parent = scheme_->NodeById(*p);
        if (parent != nullptr) out.push_back(parent);
      }
      break;
    }
    // Ancestor/ordering axes below resolve through Ruid2Scheme::Ancestors /
    // CompareIds, which serve the frame tail of each chain from the scheme's
    // AncestorPathCache (one memoized chain per area).
    case Axis::kAncestor:
      out = axes_.Ancestors(id);
      break;
    case Axis::kAncestorOrSelf:
      out.push_back(n);
      {
        auto up = axes_.Ancestors(id);
        out.insert(out.end(), up.begin(), up.end());
      }
      break;
    case Axis::kFollowingSibling:
      out = axes_.FollowingSiblings(id);
      break;
    case Axis::kPrecedingSibling:
      out = axes_.PrecedingSiblings(id);
      break;
    case Axis::kFollowing:
      out = axes_.Following(id);
      break;
    case Axis::kPreceding:
      out = axes_.Preceding(id);
      // rpreceding returns area-bulk order; reverse axes expect
      // nearest-first, which positional predicates rely on.
      std::sort(out.begin(), out.end(),
                [&](xml::Node* a, xml::Node* b) {
                  return scheme_->CompareIds(scheme_->label(a),
                                             scheme_->label(b)) > 0;
                });
      break;
  }
  ids_generated_ += out.size();
  return out;
}

bool RuidEvaluator::StepUsesIndex(
    const Step& step, const std::vector<xml::Node*>& context) const {
  if (name_index_ == nullptr) return false;
  if (step.test.kind != NodeTestKind::kName) return false;
  bool order_axis = false;
  switch (step.axis) {
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kPreceding:
    case Axis::kFollowing:
      order_axis = true;
      break;
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
      break;
    default:
      return false;  // cheap axes navigate directly
  }
  // Positional predicates count within each context node's axis order,
  // which the merged candidate pass cannot reproduce.
  for (const Predicate& p : step.predicates) {
    if (p.kind == Predicate::Kind::kPosition) return false;
  }
  if (order_axis) {
    // Navigating preceding/following/ancestor costs ~document-size per
    // context node; candidate filtering costs |candidates| per context
    // node and is essentially always cheaper.
    return true;
  }
  // A `//name` step rooted at the document node needs no filtering at
  // all — every candidate descends from the document — so the posting
  // list is the answer regardless of its size.
  if (context.size() == 1 && context[0]->is_document()) return true;
  // Descendant axes navigate subtree-locally, which is cheap; take the
  // candidate route only when the condition is specific (Sec. 3.5): the
  // candidate x context pair work must stay well under one document scan.
  size_t candidates = name_index_->Lookup(step.test.name).size();
  return candidates * std::max<size_t>(context.size(), 1) <=
         scheme_->label_count() / 4;
}

bool RuidEvaluator::TryPathIndexChain(const std::vector<Step>& steps,
                                      const xml::Node* context,
                                      std::vector<xml::Node*>* out) {
  if (path_index_ == nullptr || steps.empty()) return false;
  if (context == nullptr || !context->is_document()) return false;
  std::vector<std::string_view> names;
  names.reserve(steps.size());
  for (const Step& step : steps) {
    if (step.axis != Axis::kChild || !step.predicates.empty()) return false;
    if (step.test.kind != NodeTestKind::kName) return false;
    names.push_back(step.test.name);
  }
  // The index keys every node type by its tag chain; a name test only
  // admits elements (a PI whose target matches the leaf name must not
  // slip in).
  for (xml::Node* n : path_index_->LookupPath(names)) {
    if (n->is_element()) out->push_back(n);
  }
  ids_generated_ += out->size();
  return true;
}

bool RuidEvaluator::TryChildChainBackwards(const std::vector<Step>& steps,
                                           const xml::Node* context,
                                           std::vector<xml::Node*>* out) {
  if (name_index_ == nullptr || steps.empty()) return false;
  if (context == nullptr || !context->is_document()) return false;
  for (const Step& step : steps) {
    if (step.axis != Axis::kChild || !step.predicates.empty()) return false;
    if (step.test.kind != NodeTestKind::kName &&
        step.test.kind != NodeTestKind::kAnyName) {
      return false;
    }
  }
  if (steps.back().test.kind != NodeTestKind::kName) return false;

  // "We need only to list the grandparents, by applying rparent() twice, of
  // the elements of the type element2 and exclude those which are not of
  // the type element1" — generalized to any all-child chain.
  const std::vector<xml::Node*>& candidates =
      name_index_->Lookup(steps.back().test.name);
  ids_generated_ += candidates.size();
  for (xml::Node* candidate : candidates) {
    core::Ruid2Id id = scheme_->label(candidate);
    xml::Node* node = candidate;
    bool matches = true;
    for (size_t j = steps.size(); j-- > 0;) {
      if (node == nullptr || !MatchesTest(node, steps[j].test, Axis::kChild)) {
        matches = false;
        break;
      }
      if (j == 0) {
        // The first step selects children of the document node, i.e. the
        // main root: the climb must have ended exactly there.
        matches = id == core::Ruid2RootId();
        break;
      }
      auto parent = scheme_->Parent(id);
      if (!parent.ok()) {
        matches = false;
        break;
      }
      id = parent.MoveValueUnsafe();
      node = scheme_->NodeById(id);
    }
    if (matches) out->push_back(candidate);
  }
  return true;
}

std::vector<xml::Node*> RuidEvaluator::EvalStepViaIndex(
    const std::vector<xml::Node*>& context, const Step& step) {
  const std::vector<xml::Node*>& candidates =
      name_index_->Lookup(step.test.name);
  ids_generated_ += candidates.size();
  std::vector<xml::Node*> out;
  for (xml::Node* x : candidates) {
    const core::Ruid2Id& xid = scheme_->label(x);
    bool on_axis = false;
    for (xml::Node* n : context) {
      if (n->is_document()) {
        // Every tree node descends from the document node.
        on_axis = step.axis == Axis::kDescendant ||
                  step.axis == Axis::kDescendantOrSelf;
        if (on_axis) break;
        continue;
      }
      if (n->is_attribute()) continue;  // handled by the navigate path
      const core::Ruid2Id& cid = scheme_->label(n);
      switch (step.axis) {
        case Axis::kDescendant:
          on_axis = scheme_->IsAncestorId(cid, xid);
          break;
        case Axis::kDescendantOrSelf:
          on_axis = xid == cid || scheme_->IsAncestorId(cid, xid);
          break;
        case Axis::kAncestor:
          on_axis = scheme_->IsAncestorId(xid, cid);
          break;
        case Axis::kAncestorOrSelf:
          on_axis = xid == cid || scheme_->IsAncestorId(xid, cid);
          break;
        case Axis::kPreceding:
          on_axis = scheme_->CompareIds(xid, cid) < 0 &&
                    !scheme_->IsAncestorId(xid, cid);
          break;
        case Axis::kFollowing:
          on_axis = scheme_->CompareIds(xid, cid) > 0 &&
                    !scheme_->IsAncestorId(cid, xid);
          break;
        default:
          break;
      }
      if (on_axis) break;
    }
    if (!on_axis) continue;
    bool passes = true;
    for (const Predicate& p : step.predicates) {
      if (!MatchesPredicate(x, p)) {
        passes = false;
        break;
      }
    }
    if (passes) out.push_back(x);
  }
  return out;
}

namespace {

/// Fuses "descendant-or-self::node()/child::t" into "descendant::t" (exact
/// when the child step has no positional predicate — positions count per
/// parent there). This is what makes `//t` hit the name index.
std::vector<Step> FuseDescendantSteps(const std::vector<Step>& steps) {
  std::vector<Step> out;
  for (size_t i = 0; i < steps.size(); ++i) {
    const Step& step = steps[i];
    bool is_dos_node = step.axis == Axis::kDescendantOrSelf &&
                       step.test.kind == NodeTestKind::kAnyNode &&
                       step.predicates.empty();
    if (is_dos_node && i + 1 < steps.size()) {
      const Step& next = steps[i + 1];
      bool positional = false;
      for (const Predicate& p : next.predicates) {
        positional |= p.kind == Predicate::Kind::kPosition;
      }
      if (next.axis == Axis::kChild && !positional) {
        Step fused = next;
        fused.axis = Axis::kDescendant;
        out.push_back(std::move(fused));
        ++i;
        continue;
      }
    }
    out.push_back(step);
  }
  return out;
}

}  // namespace

Result<std::vector<xml::Node*>> RuidEvaluator::Evaluate(
    const LocationPath& path, xml::Node* context) {
  if (context == nullptr) context = doc_->document_node();
  std::vector<Step> steps = FuseDescendantSteps(path.steps);
  if (path.absolute) {
    std::vector<xml::Node*> chain_result;
    if (TryPathIndexChain(path.steps, context, &chain_result)) {
      return chain_result;  // postings are kept in document order
    }
    if (TryChildChainBackwards(path.steps, context, &chain_result)) {
      return chain_result;  // candidates arrive in document order
    }
  }
  std::vector<xml::Node*> current{context};
  // True while `current` is a duplicate-free document-order set: index
  // posting lists arrive that way, so a path whose last executed step was
  // index-evaluated skips the final identifier sort — for an unselective
  // `//name` the sort would otherwise cost more than the step itself.
  bool document_ordered = false;
  for (const Step& step : steps) {
    if (StepUsesIndex(step, current)) {
      // Attribute context nodes cannot be skipped silently on ancestor
      // axes; fall back when any are present.
      bool has_attribute_context = false;
      for (xml::Node* n : current) {
        has_attribute_context |= n->is_attribute();
      }
      if (!has_attribute_context) {
        current = EvalStepViaIndex(current, step);
        document_ordered = true;
        if (current.empty()) break;
        continue;
      }
    }
    document_ordered = false;
    // Following axis results come in area-bulk order too; positional
    // predicates need axis order, so sort when one is present.
    bool needs_axis_order = false;
    for (const Predicate& p : step.predicates) {
      if (p.kind == Predicate::Kind::kPosition) needs_axis_order = true;
    }
    std::vector<xml::Node*> next;
    for (xml::Node* n : current) {
      std::vector<xml::Node*> axis_nodes = GenerateAxis(n, step.axis);
      if (needs_axis_order &&
          (step.axis == Axis::kFollowing || step.axis == Axis::kDescendant ||
           step.axis == Axis::kDescendantOrSelf)) {
        std::sort(axis_nodes.begin(), axis_nodes.end(),
                  [&](xml::Node* a, xml::Node* b) {
                    return scheme_->CompareIds(scheme_->label(a),
                                               scheme_->label(b)) < 0;
                  });
      }
      std::vector<xml::Node*> tested;
      tested.reserve(axis_nodes.size());
      for (xml::Node* x : axis_nodes) {
        if (MatchesTest(x, step.test, step.axis)) tested.push_back(x);
      }
      tested = ApplyPredicates(std::move(tested), step.predicates);
      next.insert(next.end(), tested.begin(), tested.end());
    }
    current = DedupNodes(std::move(next));
    if (current.empty()) break;
  }
  if (!document_ordered) SortDocumentOrder(&current);
  return current;
}

void RuidEvaluator::SortDocumentOrder(std::vector<xml::Node*>* nodes) const {
  // Document order by identifier comparison; attributes order just after
  // their owner element, in declaration order.
  auto order_key = [&](const xml::Node* n) -> const xml::Node* {
    return n->is_attribute() ? n->parent() : n;
  };
  std::sort(nodes->begin(), nodes->end(),
            [&](xml::Node* a, xml::Node* b) {
              const xml::Node* ka = order_key(a);
              const xml::Node* kb = order_key(b);
              if (ka != kb) {
                if (ka->is_document()) return true;
                if (kb->is_document()) return false;
                int c = scheme_->CompareIds(scheme_->label(ka),
                                            scheme_->label(kb));
                if (c != 0) return c < 0;
              }
              if (a->is_attribute() != b->is_attribute()) {
                return !a->is_attribute();
              }
              return a->serial() < b->serial();
            });
}

Result<std::vector<xml::Node*>> RuidEvaluator::Evaluate(const UnionExpr& expr,
                                                        xml::Node* context) {
  // A single-path "union" is already duplicate-free and document-ordered;
  // re-sorting it would throw away the ordered-result bookkeeping the
  // per-path evaluation just did.
  if (expr.paths.size() == 1) return Evaluate(expr.paths[0], context);
  std::vector<xml::Node*> merged;
  for (const LocationPath& path : expr.paths) {
    RUIDX_ASSIGN_OR_RETURN(std::vector<xml::Node*> part,
                           Evaluate(path, context));
    merged.insert(merged.end(), part.begin(), part.end());
  }
  merged = DedupNodes(std::move(merged));
  SortDocumentOrder(&merged);
  return merged;
}

Result<std::vector<xml::Node*>> RuidEvaluator::Evaluate(std::string_view path,
                                                        xml::Node* context) {
  RUIDX_ASSIGN_OR_RETURN(UnionExpr parsed, ParseUnion(path));
  return Evaluate(parsed, context);
}

}  // namespace xpath
}  // namespace ruidx
