// Structural (containment) joins: given a candidate ancestor set A and a
// candidate descendant set D, produce every (a, d) pair with a ancestor of
// d. This is the workhorse of relational XML query processing (Li & Moon
// [6]; Zhang et al. [11] in the paper's related work) and the natural
// consumer of a numbering scheme: the join condition is decided by
// identifiers alone.
//
// Three implementations share one stack-based skeleton (a single merge pass
// over both inputs in document order, maintaining the stack of currently
// open ancestors):
//   * ruid       — order and ancestorship from Ruid2 identifiers,
//   * interval   — order and ancestorship from XISS (order, size) labels,
//   * nested loop — the quadratic DOM baseline, used as ground truth.
#ifndef RUIDX_XPATH_STRUCTURAL_JOIN_H_
#define RUIDX_XPATH_STRUCTURAL_JOIN_H_

#include <string_view>
#include <utility>
#include <vector>

#include "core/ruid2.h"
#include "scheme/xiss.h"
#include "util/result.h"
#include "xml/dom.h"
#include "xpath/name_index.h"

namespace ruidx {
namespace storage {
class ElementStore;
class StoreSnapshot;
}  // namespace storage

namespace xpath {

using JoinResult = std::vector<std::pair<xml::Node*, xml::Node*>>;

/// Stack-based merge join over ruid identifiers. Inputs need not be sorted.
/// Pairs come out grouped by descendant, outer ancestors first.
JoinResult StructuralJoinRuid(const core::Ruid2Scheme& scheme,
                              std::vector<xml::Node*> ancestors,
                              std::vector<xml::Node*> descendants);

/// Seeds both join inputs from the in-memory name index (Sec. 3.5's
/// "second approach" applied to the join: candidates come from the
/// condition, containment from identifier arithmetic) and runs the ruid
/// stack join — no document scan to gather either side.
JoinResult StructuralJoinRuidByName(const core::Ruid2Scheme& scheme,
                                    const NameIndex& index,
                                    std::string_view ancestor_name,
                                    std::string_view descendant_name);

/// Same seeding from the persistent name index: one posting-list scan per
/// side (ElementStore::ScanNameTerm), identifiers resolved to DOM nodes
/// through the scheme, then the ruid stack join. This is the query path the
/// on-disk secondary indexes exist for — the store is never enumerated.
Result<JoinResult> StructuralJoinRuidFromStore(
    const core::Ruid2Scheme& scheme, storage::ElementStore* store,
    std::string_view ancestor_name, std::string_view descendant_name);

/// The same index-seeded join against an MVCC view of the store
/// (ElementStore::OpenSnapshot): posting scans and record reads go through
/// the snapshot's committed pages, so the join neither blocks on a
/// concurrent Flush nor observes half-committed postings.
Result<JoinResult> StructuralJoinRuidFromSnapshot(
    const core::Ruid2Scheme& scheme, storage::StoreSnapshot* snapshot,
    std::string_view ancestor_name, std::string_view descendant_name);

/// Same skeleton over XISS interval labels.
JoinResult StructuralJoinInterval(const scheme::XissScheme& scheme,
                                  std::vector<xml::Node*> ancestors,
                                  std::vector<xml::Node*> descendants);

/// Quadratic DOM-pointer baseline (ground truth for tests and the
/// benchmark's lower bound).
JoinResult StructuralJoinNestedLoop(std::vector<xml::Node*> ancestors,
                                    std::vector<xml::Node*> descendants);

}  // namespace xpath
}  // namespace ruidx

#endif  // RUIDX_XPATH_STRUCTURAL_JOIN_H_
