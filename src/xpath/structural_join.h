// Structural (containment) joins: given a candidate ancestor set A and a
// candidate descendant set D, produce every (a, d) pair with a ancestor of
// d. This is the workhorse of relational XML query processing (Li & Moon
// [6]; Zhang et al. [11] in the paper's related work) and the natural
// consumer of a numbering scheme: the join condition is decided by
// identifiers alone.
//
// Three implementations share one stack-based skeleton (a single merge pass
// over both inputs in document order, maintaining the stack of currently
// open ancestors):
//   * ruid       — order and ancestorship from Ruid2 identifiers,
//   * interval   — order and ancestorship from XISS (order, size) labels,
//   * nested loop — the quadratic DOM baseline, used as ground truth.
#ifndef RUIDX_XPATH_STRUCTURAL_JOIN_H_
#define RUIDX_XPATH_STRUCTURAL_JOIN_H_

#include <utility>
#include <vector>

#include "core/ruid2.h"
#include "scheme/xiss.h"
#include "xml/dom.h"

namespace ruidx {
namespace xpath {

using JoinResult = std::vector<std::pair<xml::Node*, xml::Node*>>;

/// Stack-based merge join over ruid identifiers. Inputs need not be sorted.
/// Pairs come out grouped by descendant, outer ancestors first.
JoinResult StructuralJoinRuid(const core::Ruid2Scheme& scheme,
                              std::vector<xml::Node*> ancestors,
                              std::vector<xml::Node*> descendants);

/// Same skeleton over XISS interval labels.
JoinResult StructuralJoinInterval(const scheme::XissScheme& scheme,
                                  std::vector<xml::Node*> ancestors,
                                  std::vector<xml::Node*> descendants);

/// Quadratic DOM-pointer baseline (ground truth for tests and the
/// benchmark's lower bound).
JoinResult StructuralJoinNestedLoop(std::vector<xml::Node*> ancestors,
                                    std::vector<xml::Node*> descendants);

}  // namespace xpath
}  // namespace ruidx

#endif  // RUIDX_XPATH_STRUCTURAL_JOIN_H_
