// PathIndex: root-to-node tag path -> node list, in document order.
//
// The in-memory face of the store's persistent path index: both sides hash
// a root-to-node tag path to the same 64-bit term (RootPathTerm /
// ExtendPathTerm), so an absolute child chain like /a/b/c is answered with
// one posting-list lookup — no navigation, no candidate climb — and the
// results can be cross-checked against ElementStore::ScanPathTerm. Term
// collisions are possible in principle (64-bit hashes), so lookups by name
// chain re-verify each hit's tag path against the query.
#ifndef RUIDX_XPATH_PATH_INDEX_H_
#define RUIDX_XPATH_PATH_INDEX_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/ruid2_id.h"
#include "xml/dom.h"

namespace ruidx {
namespace xpath {

class PathIndex {
 public:
  /// Indexes every node under `root` by the hash of its root-to-node tag
  /// path. The root must outlive the index (rebuilds re-walk it).
  explicit PathIndex(xml::Node* root) { Build(root); }

  void Build(xml::Node* root);

  /// Update accounting hook: every successful update invalidates the
  /// posting lists; the index rebuilds from the root on the next lookup
  /// rather than serving stale — possibly dangling — postings.
  void OnUpdate(const core::UpdateReport& report);

  /// Invalidation for mutations the scheme never saw (external edits
  /// followed by RelabelAndCount).
  void MarkStale() { stale_ = true; }

  /// Nodes whose root-to-node tag path is exactly names[0]/.../names.back(),
  /// in document order. Hash hits are re-verified against the actual tag
  /// chain, so a term collision cannot leak a wrong node.
  std::vector<xml::Node*> LookupPath(
      const std::vector<std::string_view>& names) const;

  /// Raw posting list for a precomposed term (document order). No
  /// collision filtering — callers verifying against the store's postings
  /// want the raw list.
  const std::vector<xml::Node*>& LookupTerm(uint64_t term) const;

  size_t distinct_paths() const;

 private:
  void EnsureFresh() const;

  xml::Node* root_ = nullptr;
  mutable bool stale_ = false;
  mutable std::unordered_map<uint64_t, std::vector<xml::Node*>> by_term_;
  std::vector<xml::Node*> empty_;
};

}  // namespace xpath
}  // namespace ruidx

#endif  // RUIDX_XPATH_PATH_INDEX_H_
