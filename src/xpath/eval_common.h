// Shared pieces of the two XPath evaluators: node-test matching and
// predicate filtering. Both evaluators produce identical node sets — one
// navigates the DOM, the other generates axes from ruid identifiers — which
// is exactly what the E10 benchmark compares.
#ifndef RUIDX_XPATH_EVAL_COMMON_H_
#define RUIDX_XPATH_EVAL_COMMON_H_

#include <vector>

#include "xml/dom.h"
#include "xpath/ast.h"

namespace ruidx {
namespace xpath {

/// Does `n` pass the node test? The principal node type of the attribute
/// axis is attribute; for all other axes it is element.
bool MatchesTest(const xml::Node* n, const NodeTest& test, Axis axis);

/// Evaluates a non-positional predicate on one node.
bool MatchesPredicate(const xml::Node* n, const Predicate& p);

/// Applies a step's predicate list to an axis result (already in axis
/// order). Positional predicates select by 1-based index in the current
/// list; the rest filter per node.
std::vector<xml::Node*> ApplyPredicates(std::vector<xml::Node*> nodes,
                                        const std::vector<Predicate>& preds);

/// Removes duplicates (by node identity) while keeping first occurrence.
std::vector<xml::Node*> DedupNodes(std::vector<xml::Node*> nodes);

}  // namespace xpath
}  // namespace ruidx

#endif  // RUIDX_XPATH_EVAL_COMMON_H_
