// AST for the core XPath location-path grammar of Sec. 3.5 (rules [1]-[3]):
//   LocationPath ::= RelativeLocationPath | AbsoluteLocationPath
//   Step         ::= axis '::' node-test predicate*  (plus the abbreviations
//                    '.', '..', '@name', '//', implicit child axis)
// A location step has an axis, a node test and zero or more predicates; the
// supported predicates cover the shapes the paper's workloads need
// (position, attribute existence/equality, child existence, text equality).
#ifndef RUIDX_XPATH_AST_H_
#define RUIDX_XPATH_AST_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ruidx {
namespace xpath {

enum class Axis {
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kSelf,
  kAttribute,
  kFollowing,
  kPreceding,
  kFollowingSibling,
  kPrecedingSibling,
};

const char* AxisName(Axis axis);

/// True for axes whose proximity order runs against document order
/// (ancestor, preceding, preceding-sibling, parent).
bool IsReverseAxis(Axis axis);

enum class NodeTestKind {
  kName,     // element/attribute name, e.g. "person"
  kAnyName,  // *
  kAnyNode,  // node()
  kText,     // text()
  kComment,  // comment()
  kPi,       // processing-instruction()
};

struct NodeTest {
  NodeTestKind kind = NodeTestKind::kAnyNode;
  std::string name;  // for kName
};

struct Predicate {
  enum class Kind {
    kPosition,     // [3]
    kAttrExists,   // [@id]
    kAttrEquals,   // [@id = "x"]
    kChildExists,  // [name]
    kTextEquals,   // [text() = "v"]
  };
  Kind kind = Kind::kPosition;
  uint64_t position = 0;
  std::string name;
  std::string value;
};

struct Step {
  Axis axis = Axis::kChild;
  NodeTest test;
  std::vector<Predicate> predicates;
};

struct LocationPath {
  bool absolute = false;
  std::vector<Step> steps;

  /// Canonical unabbreviated rendering, e.g.
  /// "/child::site/descendant-or-self::node()/child::item".
  std::string ToString() const;
};

/// A union of location paths ("//a | //b"); the node-sets are merged,
/// deduplicated and returned in document order. A union of one is what
/// plain path evaluation uses.
struct UnionExpr {
  std::vector<LocationPath> paths;

  std::string ToString() const;
};

}  // namespace xpath
}  // namespace ruidx

#endif  // RUIDX_XPATH_AST_H_
