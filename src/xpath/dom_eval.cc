#include "xpath/dom_eval.h"

#include <algorithm>
#include <unordered_map>

#include "xpath/eval_common.h"
#include "xpath/parser.h"

namespace ruidx {
namespace xpath {

std::vector<xml::Node*> DomEvaluator::GenerateAxis(xml::Node* n, Axis axis) {
  std::vector<xml::Node*> out;
  switch (axis) {
    case Axis::kSelf:
      out.push_back(n);
      break;
    case Axis::kChild:
      out = n->children();
      break;
    case Axis::kAttribute:
      out = n->attributes();
      break;
    case Axis::kParent:
      if (n->parent() != nullptr && !n->parent()->is_document()) {
        out.push_back(n->parent());
      }
      break;
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
      if (axis == Axis::kAncestorOrSelf) out.push_back(n);
      for (xml::Node* p = n->parent(); p != nullptr && !p->is_document();
           p = p->parent()) {
        out.push_back(p);
      }
      break;
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
      xml::PreorderTraverse(n, [&](xml::Node* x, int) {
        if (x != n || axis == Axis::kDescendantOrSelf) out.push_back(x);
        return true;
      });
      break;
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling: {
      xml::Node* parent = n->parent();
      if (parent == nullptr) break;
      const auto& sibs = parent->children();
      int idx = n->IndexInParent();
      if (idx < 0) break;
      if (axis == Axis::kFollowingSibling) {
        for (size_t i = static_cast<size_t>(idx) + 1; i < sibs.size(); ++i) {
          out.push_back(sibs[i]);
        }
      } else {
        for (size_t i = static_cast<size_t>(idx); i-- > 0;) {
          out.push_back(sibs[i]);  // nearest first (reverse axis order)
        }
      }
      break;
    }
    case Axis::kFollowing: {
      // For each ancestor-or-self, the subtrees of its following siblings.
      for (xml::Node* cur = n; cur != nullptr && !cur->is_document();
           cur = cur->parent()) {
        xml::Node* parent = cur->parent();
        if (parent == nullptr) break;
        const auto& sibs = parent->children();
        int idx = cur->IndexInParent();
        for (size_t i = static_cast<size_t>(idx) + 1; i < sibs.size(); ++i) {
          xml::PreorderTraverse(sibs[i], [&](xml::Node* x, int) {
            out.push_back(x);
            return true;
          });
        }
      }
      break;
    }
    case Axis::kPreceding: {
      // Reverse-document-order: nearest preceding subtree first.
      for (xml::Node* cur = n; cur != nullptr && !cur->is_document();
           cur = cur->parent()) {
        xml::Node* parent = cur->parent();
        if (parent == nullptr) break;
        const auto& sibs = parent->children();
        int idx = cur->IndexInParent();
        for (size_t i = static_cast<size_t>(idx); i-- > 0;) {
          // Collect the subtree, then reverse it (preorder -> reverse doc).
          std::vector<xml::Node*> subtree;
          xml::PreorderTraverse(sibs[i], [&](xml::Node* x, int) {
            subtree.push_back(x);
            return true;
          });
          out.insert(out.end(), subtree.rbegin(), subtree.rend());
        }
      }
      break;
    }
  }
  nodes_visited_ += out.size();
  return out;
}

void DomEvaluator::SortDocumentOrder(std::vector<xml::Node*>* nodes) {
  // Build a document-order index, slotting attributes right after their
  // owner element. Keyed by serial, not pointer: the comparator's behaviour
  // must depend on the tree alone, never on node addresses.
  std::unordered_map<uint32_t, uint64_t> order;
  uint64_t pos = 0;
  xml::PreorderTraverse(doc_->document_node(), [&](xml::Node* n, int) {
    order[n->serial()] = pos++;
    for (xml::Node* a : n->attributes()) order[a->serial()] = pos++;
    return true;
  });
  std::sort(nodes->begin(), nodes->end(),
            [&](const xml::Node* a, const xml::Node* b) {
              return order.at(a->serial()) < order.at(b->serial());
            });
}

Result<std::vector<xml::Node*>> DomEvaluator::Evaluate(
    const LocationPath& path, xml::Node* context) {
  if (context == nullptr) context = doc_->document_node();
  std::vector<xml::Node*> current{context};
  for (const Step& step : path.steps) {
    std::vector<xml::Node*> next;
    for (xml::Node* n : current) {
      std::vector<xml::Node*> axis_nodes = GenerateAxis(n, step.axis);
      std::vector<xml::Node*> tested;
      tested.reserve(axis_nodes.size());
      for (xml::Node* x : axis_nodes) {
        if (MatchesTest(x, step.test, step.axis)) tested.push_back(x);
      }
      tested = ApplyPredicates(std::move(tested), step.predicates);
      next.insert(next.end(), tested.begin(), tested.end());
    }
    current = DedupNodes(std::move(next));
    if (current.empty()) break;
  }
  SortDocumentOrder(&current);
  return current;
}

Result<std::vector<xml::Node*>> DomEvaluator::Evaluate(const UnionExpr& expr,
                                                       xml::Node* context) {
  std::vector<xml::Node*> merged;
  for (const LocationPath& path : expr.paths) {
    RUIDX_ASSIGN_OR_RETURN(std::vector<xml::Node*> part,
                           Evaluate(path, context));
    merged.insert(merged.end(), part.begin(), part.end());
  }
  merged = DedupNodes(std::move(merged));
  SortDocumentOrder(&merged);
  return merged;
}

Result<std::vector<xml::Node*>> DomEvaluator::Evaluate(std::string_view path,
                                                       xml::Node* context) {
  RUIDX_ASSIGN_OR_RETURN(UnionExpr parsed, ParseUnion(path));
  return Evaluate(parsed, context);
}

}  // namespace xpath
}  // namespace ruidx
