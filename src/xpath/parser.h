// Recursive-descent parser for the location-path subset (Sec. 3.5).
//
// Supported syntax:
//   absolute and relative paths:    /a/b, a/b
//   the descendant shorthand:       //item, a//b
//   explicit axes:                  ancestor::x, following-sibling::node()
//   abbreviations:                  . (self::node), .. (parent::node),
//                                   @id (attribute::id)
//   node tests:                     name, *, node(), text(), comment(),
//                                   processing-instruction()
//   predicates:                     [3], [@id], [@id="x"], [name],
//                                   [text()="v"]
#ifndef RUIDX_XPATH_PARSER_H_
#define RUIDX_XPATH_PARSER_H_

#include <string_view>

#include "util/result.h"
#include "xpath/ast.h"

namespace ruidx {
namespace xpath {

/// Parses a location path; errors carry the offending position.
Result<LocationPath> ParsePath(std::string_view input);

/// Parses a union expression: one or more location paths joined by '|'
/// (the '|' may not appear inside predicate literals).
Result<UnionExpr> ParseUnion(std::string_view input);

}  // namespace xpath
}  // namespace ruidx

#endif  // RUIDX_XPATH_PARSER_H_
