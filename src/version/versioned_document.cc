#include "version/versioned_document.h"

#include <sstream>

#include "xml/parser.h"
#include "xml/serializer.h"

namespace ruidx {
namespace version {

std::string Operation::ToString() const {
  std::ostringstream os;
  os << "#" << sequence << " ";
  if (kind == Kind::kInsert) {
    os << "insert " << payload << " under " << parent.ToString() << " at "
       << position;
  } else {
    os << "delete " << target.ToString();
  }
  return os.str();
}

Result<std::unique_ptr<VersionedDocument>> VersionedDocument::FromXml(
    const std::string& base_xml, core::PartitionOptions options) {
  auto vdoc =
      std::unique_ptr<VersionedDocument>(new VersionedDocument(options));
  RUIDX_ASSIGN_OR_RETURN(vdoc->doc_, xml::Parse(base_xml));
  if (vdoc->doc_->root() == nullptr) {
    return Status::InvalidArgument("base document has no root element");
  }
  vdoc->base_xml_ = base_xml;
  vdoc->scheme_.Build(vdoc->doc_->root());
  return vdoc;
}

Result<core::Ruid2Id> VersionedDocument::Insert(const core::Ruid2Id& parent,
                                                uint64_t position,
                                                const std::string& fragment_xml) {
  xml::Node* parent_node = scheme_.NodeById(parent);
  if (parent_node == nullptr) {
    return Status::NotFound("no node carries identifier " + parent.ToString());
  }
  // Parse the fragment in a scratch document, then copy it into ours (node
  // ownership is per document).
  RUIDX_ASSIGN_OR_RETURN(std::unique_ptr<xml::Document> scratch,
                         xml::Parse(fragment_xml));
  xml::Node* copy = xml::DeepCopy(doc_.get(), scratch->root());
  if (copy == nullptr) {
    return Status::InvalidArgument("fragment has no element root");
  }
  RUIDX_ASSIGN_OR_RETURN(
      core::UpdateReport report,
      scheme_.InsertAndRelabel(doc_.get(), parent_node,
                               static_cast<size_t>(position), copy));
  total_relabeled_ += report.relabeled;

  Operation op;
  op.kind = Operation::Kind::kInsert;
  op.sequence = journal_.size() + 1;
  op.parent = parent;
  op.position = position;
  op.payload = xml::Serialize(scratch->root());
  journal_.push_back(std::move(op));
  ++version_;
  return scheme_.label(copy);
}

Status VersionedDocument::Delete(const core::Ruid2Id& target) {
  xml::Node* victim = scheme_.NodeById(target);
  if (victim == nullptr) {
    return Status::NotFound("no node carries identifier " + target.ToString());
  }
  RUIDX_ASSIGN_OR_RETURN(core::UpdateReport report,
                         scheme_.RemoveAndRelabel(doc_.get(), victim));
  total_relabeled_ += report.relabeled;

  Operation op;
  op.kind = Operation::Kind::kDelete;
  op.sequence = journal_.size() + 1;
  op.target = target;
  journal_.push_back(std::move(op));
  ++version_;
  return Status::OK();
}

Status VersionedDocument::Apply(const Operation& op) {
  if (op.kind == Operation::Kind::kInsert) {
    return Insert(op.parent, op.position, op.payload).status();
  }
  return Delete(op.target);
}

Status VersionedDocument::ApplyAll(const std::vector<Operation>& journal) {
  for (const Operation& op : journal) {
    RUIDX_RETURN_NOT_OK(Apply(op));
  }
  return Status::OK();
}

Status VersionedDocument::RollbackTo(uint64_t sequence) {
  if (sequence > journal_.size()) {
    return Status::InvalidArgument("cannot roll back to sequence " +
                                   std::to_string(sequence) + ": journal has " +
                                   std::to_string(journal_.size()) +
                                   " operations");
  }
  std::vector<Operation> prefix(journal_.begin(),
                                journal_.begin() + sequence);
  // Rebuild the base state in place. The scheme owns a mutex (the ancestor
  // cache), so it is rebuilt with Build() — which resets every table —
  // rather than move-assigned from a scratch scheme.
  RUIDX_ASSIGN_OR_RETURN(std::unique_ptr<xml::Document> fresh,
                         xml::Parse(base_xml_));
  if (fresh->root() == nullptr) {
    return Status::Corruption("base document has no root element");
  }
  doc_ = std::move(fresh);
  scheme_.Build(doc_->root());
  journal_.clear();
  total_relabeled_ = 0;
  // Replay re-journals the prefix; construction and incremental
  // renumbering are deterministic, so the surviving operations come back
  // with their exact original identifiers and sequence numbers.
  const uint64_t version_before = version_;
  RUIDX_RETURN_NOT_OK(ApplyAll(prefix));
  version_ = version_before + 1;
  return Status::OK();
}

std::string VersionedDocument::ToXml() const {
  return xml::Serialize(doc_->document_node());
}

}  // namespace version
}  // namespace ruidx
