// VersionedDocument: change management over stable ruid identifiers.
//
// Sec. 4 of the paper argues ruid "can be applied in applications for
// managing data that have frequent structural updates" and for "managing
// various data sources scattered over several sites on a network": because
// an update renumbers only one UID-local area, identifiers are stable
// enough to *address* edits. This module exploits that: every structural
// operation is journaled as (kind, identifier, payload), and a journal can
// be replayed against another copy of the base document — identifiers line
// up because construction and incremental renumbering are deterministic.
#ifndef RUIDX_VERSION_VERSIONED_DOCUMENT_H_
#define RUIDX_VERSION_VERSIONED_DOCUMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/ruid2.h"
#include "util/result.h"
#include "xml/dom.h"

namespace ruidx {
namespace version {

/// One journaled structural operation, addressed by identifiers.
struct Operation {
  enum class Kind : uint8_t { kInsert, kDelete };

  Kind kind = Kind::kInsert;
  uint64_t sequence = 0;  // 1-based position in the journal
  /// kInsert: identifier of the parent *at the time of the operation*.
  core::Ruid2Id parent;
  /// kInsert: child position under the parent.
  uint64_t position = 0;
  /// kInsert: the inserted subtree, serialized as XML.
  std::string payload;
  /// kDelete: identifier of the removed subtree's root at operation time.
  core::Ruid2Id target;

  std::string ToString() const;
};

/// \brief A document plus its ruid scheme plus the operation journal.
class VersionedDocument {
 public:
  /// Parses `base_xml` and numbers it. All copies built from the same base
  /// text and options produce identical identifiers.
  static Result<std::unique_ptr<VersionedDocument>> FromXml(
      const std::string& base_xml, core::PartitionOptions options = {});

  /// Inserts the subtree given as XML text under the node with identifier
  /// `parent` at `position`, journals the operation, and returns the new
  /// subtree root's identifier.
  Result<core::Ruid2Id> Insert(const core::Ruid2Id& parent, uint64_t position,
                               const std::string& fragment_xml);

  /// Removes the subtree rooted at the node with identifier `target` and
  /// journals the operation.
  Status Delete(const core::Ruid2Id& target);

  /// Applies a foreign operation (e.g. received from another site).
  Status Apply(const Operation& op);

  /// Replays `journal` on top of the current state.
  Status ApplyAll(const std::vector<Operation>& journal);

  /// Rewinds the document to the state just after journal entry `sequence`
  /// (0 = the base document): re-parses the base text, renumbers it, and
  /// replays the journal prefix. Operations past `sequence` are discarded.
  /// Advances version() by one — rollback is itself a change.
  Status RollbackTo(uint64_t sequence);

  const std::vector<Operation>& journal() const { return journal_; }

  /// Monotonic change counter. Counts every successful Insert/Delete/Apply
  /// and every RollbackTo. Deliberately NOT journal_.size(): a rollback
  /// shortens the journal, and a version number derived from its length
  /// would first run backwards and then hand out already-used versions to
  /// the operations re-applied afterwards.
  uint64_t version() const { return version_; }

  xml::Document* document() { return doc_.get(); }
  const core::Ruid2Scheme& scheme() const { return scheme_; }

  /// Current content serialized as XML.
  std::string ToXml() const;

  /// Sum of identifiers changed by all operations so far (the update-scope
  /// metric of Sec. 3.2, accumulated).
  uint64_t total_relabeled() const { return total_relabeled_; }

 private:
  explicit VersionedDocument(core::PartitionOptions options)
      : scheme_(std::move(options)) {}

  std::unique_ptr<xml::Document> doc_;
  core::Ruid2Scheme scheme_;
  /// Kept verbatim so RollbackTo can rebuild the numbering from scratch —
  /// construction is deterministic, so replaying a journal prefix over a
  /// fresh parse reproduces the exact identifiers of that version.
  std::string base_xml_;
  std::vector<Operation> journal_;
  uint64_t version_ = 0;
  uint64_t total_relabeled_ = 0;
};

}  // namespace version
}  // namespace ruidx

#endif  // RUIDX_VERSION_VERSIONED_DOCUMENT_H_
