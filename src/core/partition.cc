#include "core/partition.h"

#include <algorithm>

#include "xml/stats.h"

namespace ruidx {
namespace core {

uint64_t Partition::FrameFanout() const {
  uint64_t max_fanout = 1;
  for (const Area& a : areas) {
    max_fanout = std::max<uint64_t>(max_fanout, a.child_areas.size());
  }
  return max_fanout;
}

Partition DerivePartition(xml::Node* root,
                          const std::unordered_set<uint32_t>& root_serials) {
  Partition p;
  Partition::Area main_area;
  main_area.root = root;
  p.areas.push_back(std::move(main_area));

  // Preorder traversal with children pushed in reverse, so nodes are
  // *visited* in document order. Areas are created at visit time, which
  // keeps every child_areas list in document order of the roots — the
  // property Lemma 3 needs from the frame enumeration.
  struct Frame {
    xml::Node* node;
    uint32_t member_area;  // area in which this node takes its local index
  };
  std::vector<Frame> stack{{root, 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    p.member_area[f.node->serial()] = f.member_area;

    uint32_t expand_area = f.member_area;
    if (f.node == root) {
      p.rooted_area[root->serial()] = 0;
      // The tree root is the one member of its own area counted at
      // construction (member_count starts at 1).
    } else {
      ++p.areas[f.member_area].member_count;
      if (root_serials.contains(f.node->serial())) {
        uint32_t idx = static_cast<uint32_t>(p.areas.size());
        Partition::Area child_area;
        child_area.root = f.node;
        child_area.parent_area = f.member_area;
        p.areas.push_back(std::move(child_area));
        p.areas[f.member_area].child_areas.push_back(idx);
        p.rooted_area[f.node->serial()] = idx;
        expand_area = idx;
      }
    }
    p.areas[expand_area].local_fanout = std::max<uint64_t>(
        p.areas[expand_area].local_fanout, f.node->fanout());
    const auto& ch = f.node->children();
    for (size_t i = ch.size(); i-- > 0;) {
      stack.push_back({ch[i], expand_area});
    }
  }
  return p;
}

namespace {

/// Greedy top-down selection of area roots under the node/depth budgets.
///
/// Spill policy: when expanding a node's children would exceed the area's
/// budget, the *node itself* is promoted to an area root and its children
/// are enumerated in the fresh area. Promoting the parent (rather than each
/// child) keeps areas at least one star wide, so frames genuinely shrink
/// level by level and their fan-out rarely exceeds the source fan-out in
/// the first place (the Sec. 2.3 pass then handles the remaining cases).
std::unordered_set<uint32_t> SelectAreaRoots(xml::Node* root,
                                             const PartitionOptions& options) {
  std::unordered_set<uint32_t> roots{root->serial()};
  std::vector<uint64_t> member_count{1};  // per provisional area

  struct Frame {
    xml::Node* node;
    uint32_t area;
    uint64_t depth;  // depth of the node within its expanding area
  };
  std::vector<Frame> stack{{root, 0, 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.node->children().empty()) continue;
    bool over_budget = f.depth + 1 > options.max_area_depth ||
                       member_count[f.area] + f.node->fanout() >
                           options.max_area_nodes;
    uint32_t area = f.area;
    uint64_t depth = f.depth;
    if (over_budget && f.depth > 0) {
      // Start a new area rooted at this node. (When the node already roots
      // its area — depth 0 — there is nothing left to split: the area
      // simply exceeds the budget, e.g. a single node wider than
      // max_area_nodes.)
      roots.insert(f.node->serial());
      area = static_cast<uint32_t>(member_count.size());
      member_count.push_back(1);
      depth = 0;
    }
    member_count[area] += f.node->fanout();
    for (xml::Node* c : f.node->children()) {
      stack.push_back({c, area, depth + 1});
    }
  }
  return roots;
}

/// For the violating area `a`, returns the serial of the deepest member with
/// at least two of a's child-area roots in its subtree (the "marked node" of
/// Fig. 7), or 0 with found=false (cannot happen for a genuine violation).
bool FindPromotionCandidate(const Partition& p, uint32_t area_idx,
                            uint32_t* out_serial) {
  const Partition::Area& area = p.areas[area_idx];
  // Count, for every member on the path from each child-area root up to the
  // area root (exclusive), how many child areas pass through it. The map is
  // lookup-only: candidate selection below walks the DOM, never the map, so
  // no decision depends on hash-iteration order over addresses.
  std::unordered_map<uint32_t, uint64_t> counts;
  for (uint32_t child_idx : area.child_areas) {
    const xml::Node* r = p.areas[child_idx].root;
    for (const xml::Node* x = r->parent(); x != nullptr && x != area.root;
         x = x->parent()) {
      ++counts[x->serial()];
    }
  }
  // Deepest member with >= 2 child areas passing through, ties broken by
  // serial. Crossing nodes all lie between a child-area root and the area
  // root, so descent can stop at nested area roots.
  uint32_t best_serial = 0;
  uint64_t best_depth = 0;
  bool found = false;
  xml::PreorderTraverse(area.root, [&](xml::Node* n, int depth) {
    if (depth > 0 && p.rooted_area.contains(n->serial())) return false;
    auto it = counts.find(n->serial());
    if (it == counts.end() || it->second < 2) return true;
    uint64_t d = static_cast<uint64_t>(depth);
    if (!found || d > best_depth ||
        (d == best_depth && n->serial() < best_serial)) {
      best_serial = n->serial();
      best_depth = d;
      found = true;
    }
    return true;
  });
  if (!found) return false;
  *out_serial = best_serial;
  return true;
}

/// Folds undersized areas back into their parents, bottom-up, while the
/// union stays within twice the node budget. The 2x allowance matters: the
/// greedy pass splinters whenever a small sibling subtree is visited after
/// its area filled up (the node spills into a near-empty area of its own),
/// and the parent of such a splinter sits at the budget by construction —
/// with an exact cap nothing would ever fold back. A modestly oversized
/// area is the cheaper failure mode: every area costs a frame identifier, a
/// KTable row, and a set of shards, while an overfull one merely enumerates
/// more locals.
///
/// Child areas always carry a larger index than their parent
/// (DerivePartition creates areas at preorder visit time), so one reverse
/// scan is a full bottom-up pass: by the time area i is considered, every
/// merge below it is already reflected in eff[i], and eff[parent] keeps
/// absorbing further undersized siblings as the scan passes them. One
/// re-derive at the end rebuilds the partition.
void MergeUndersizedAreas(xml::Node* root, const PartitionOptions& options,
                          std::unordered_set<uint32_t>* roots, Partition* p) {
  std::vector<uint64_t> eff(p->areas.size());
  for (size_t i = 0; i < eff.size(); ++i) eff[i] = p->areas[i].member_count;
  bool changed = false;
  for (uint32_t i = static_cast<uint32_t>(p->areas.size()); i-- > 1;) {
    uint32_t up = p->areas[i].parent_area;
    // The area root is a member of both areas, so the union holds one node
    // fewer than the sum of the counts.
    if (eff[i] < options.min_area_nodes &&
        eff[up] + eff[i] - 1 <= 2 * options.max_area_nodes) {
      eff[up] += eff[i] - 1;
      roots->erase(p->areas[i].root->serial());
      changed = true;
    }
  }
  if (changed) *p = DerivePartition(root, *roots);
}

}  // namespace

Result<Partition> PartitionTree(xml::Node* root,
                                const PartitionOptions& options) {
  if (root == nullptr) return Status::InvalidArgument("null root");
  if (options.max_area_nodes < 2 || options.max_area_depth < 1) {
    return Status::InvalidArgument(
        "area budgets must allow at least depth 1 and 2 nodes");
  }
  PartitionOptions effective = options;
  if (options.target_area_count > 0) {
    // Adaptive granularity: size areas off the data volume. The depth
    // budget is lifted — it is exactly what shatters deep topologies into
    // splinter areas — so only the (volume-derived) node budget and the
    // merge floor govern area size.
    uint64_t node_count = xml::ComputeStats(root).node_count;
    uint64_t per_area =
        (node_count + options.target_area_count - 1) / options.target_area_count;
    effective.max_area_nodes = std::max(effective.max_area_nodes, per_area);
    effective.max_area_depth = std::numeric_limits<uint64_t>::max();
    if (effective.min_area_nodes == 0) {
      effective.min_area_nodes = effective.max_area_nodes / 2;
    }
  }
  std::unordered_set<uint32_t> roots = SelectAreaRoots(root, effective);
  Partition p = DerivePartition(root, roots);
  if (effective.min_area_nodes > 0) {
    // Merge before the fan-out adjustment: the adjustment is the
    // paper-mandated constraint, so its promotions must not be un-done —
    // even when they leave an undersized area behind.
    MergeUndersizedAreas(root, effective, &roots, &p);
  }
  if (!effective.adjust_fanout) return p;

  // Sec. 2.3: promote marked nodes until the frame fan-out is within the
  // source tree fan-out.
  uint64_t limit = std::max<uint64_t>(1, xml::ComputeStats(root).max_fanout);
  // Each round pushes every remaining violation at least one level deeper,
  // so the number of rounds is bounded by the tree height.
  for (;;) {
    bool promoted = false;
    for (uint32_t i = 0; i < p.areas.size(); ++i) {
      if (p.areas[i].child_areas.size() <= limit) continue;
      uint32_t serial = 0;
      if (FindPromotionCandidate(p, i, &serial)) {
        roots.insert(serial);
        promoted = true;
      }
    }
    if (!promoted) break;
    p = DerivePartition(root, roots);
  }
  return p;
}

}  // namespace core
}  // namespace ruidx
