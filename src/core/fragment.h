// Fragment reconstruction (Sec. 3.3): "this property ... is also important
// for the fast reconstruction of a portion of an XML document from a set of
// elements. The output is a portion of an XML document generated from these
// elements respecting the ancestor-descendant order existing in the source
// data."
//
// Given a set of nodes (e.g. a query result), the reconstruction orders
// them by identifier comparison and nests each under its closest selected
// ancestor — all decided by identifier arithmetic, no source-tree pointer
// chasing. A record-based variant does the same from stored ElementRecords,
// never touching the source document at all.
#ifndef RUIDX_CORE_FRAGMENT_H_
#define RUIDX_CORE_FRAGMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/ruid2.h"
#include "util/result.h"
#include "xml/dom.h"

namespace ruidx {
namespace core {

/// One input element for record-based reconstruction.
struct FragmentItem {
  Ruid2Id id;
  std::string name;   // element tag; empty = text node
  std::string value;  // text payload (text nodes)
};

/// Builds a new document whose top-level children are the selected nodes
/// that have no selected ancestor; every other selected node is nested
/// under its closest selected ancestor, in document order. Element names,
/// attributes and direct text content are copied from the source nodes.
/// The result is wrapped in a synthetic <fragment> root.
Result<std::unique_ptr<xml::Document>> ReconstructFragment(
    const Ruid2Scheme& scheme, std::vector<xml::Node*> nodes);

/// Same, but from bare (identifier, name, value) items — the shape a store
/// or a remote site would ship. Needs only the scheme's (κ, K) state.
Result<std::unique_ptr<xml::Document>> ReconstructFragmentFromItems(
    const Ruid2Scheme& scheme, std::vector<FragmentItem> items);

}  // namespace core
}  // namespace ruidx

#endif  // RUIDX_CORE_FRAGMENT_H_
