#include "core/global_state.h"

#include <cstring>
#include <fstream>
#include <sstream>

namespace ruidx {
namespace core {

namespace {

constexpr char kMagic[4] = {'R', 'K', 'T', '1'};

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(v >> (8 * i)));
  }
}

bool GetU64(std::string_view data, size_t* pos, uint64_t* v) {
  if (*pos + 8 > data.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<uint8_t>(data[*pos + i]))
          << (8 * i);
  }
  *pos += 8;
  return true;
}

void PutBigUint(std::string* out, const BigUint& v) {
  size_t bytes = static_cast<size_t>((v.BitWidth() + 7) / 8);
  PutU64(out, bytes);
  std::string buf(bytes, '\0');
  v.ToBytesBE(reinterpret_cast<uint8_t*>(buf.data()), bytes);
  out->append(buf);
}

bool GetBigUint(std::string_view data, size_t* pos, BigUint* v) {
  uint64_t bytes = 0;
  if (!GetU64(data, pos, &bytes)) return false;
  if (*pos + bytes > data.size()) return false;
  *v = BigUint::FromBytesBE(
      reinterpret_cast<const uint8_t*>(data.data()) + *pos,
      static_cast<size_t>(bytes));
  *pos += bytes;
  return true;
}

}  // namespace

std::string SerializeGlobalState(uint64_t kappa, const KTable& ktable) {
  std::string out(kMagic, sizeof(kMagic));
  PutU64(&out, kappa);
  PutU64(&out, ktable.size());
  for (const KRow& row : ktable.rows()) {
    PutBigUint(&out, row.global);
    PutBigUint(&out, row.root_local);
    PutU64(&out, row.fanout);
  }
  return out;
}

Result<GlobalState> DeserializeGlobalState(std::string_view data) {
  if (data.size() < sizeof(kMagic) ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a ruid global-state blob");
  }
  size_t pos = sizeof(kMagic);
  GlobalState state;
  uint64_t rows = 0;
  if (!GetU64(data, &pos, &state.kappa) || !GetU64(data, &pos, &rows)) {
    return Status::Corruption("truncated global-state header");
  }
  for (uint64_t i = 0; i < rows; ++i) {
    KRow row;
    if (!GetBigUint(data, &pos, &row.global) ||
        !GetBigUint(data, &pos, &row.root_local) ||
        !GetU64(data, &pos, &row.fanout)) {
      return Status::Corruption("truncated global-state row " +
                                std::to_string(i));
    }
    state.ktable.Upsert(std::move(row));
  }
  if (pos != data.size()) {
    return Status::Corruption("trailing bytes after global state");
  }
  return state;
}

Status SaveGlobalState(uint64_t kappa, const KTable& ktable,
                       const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path);
  std::string blob = SerializeGlobalState(kappa, ktable);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<GlobalState> LoadGlobalState(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string blob = buf.str();
  return DeserializeGlobalState(blob);
}

}  // namespace core
}  // namespace ruidx
