#include "core/axes.h"

#include <algorithm>
#include <unordered_set>

#include "scheme/uid.h"

namespace ruidx {
namespace core {

using scheme::UidChild;
using scheme::UidCompareOrder;
using scheme::UidIsAncestor;

RuidAxes::RuidAxes(const Ruid2Scheme* scheme) : scheme_(scheme) { Refresh(); }

void RuidAxes::Refresh() {
  const Partition& partition = scheme_->partition();
  area_members_.clear();
  area_members_.resize(partition.areas.size());
  area_index_.clear();
  xml::Node* main_root =
      partition.areas.empty() ? nullptr : partition.areas[0].root;
  scheme_->ForEachLabeled([&](xml::Node* n, const Ruid2Id& id) {
    // The main root is nominally a member of its own area with local index
    // 1, but it can never appear on anyone's child/sibling/preceding/
    // following/descendant axis, so the member lists skip it.
    if (n == main_root) return;
    uint32_t area = partition.member_area.at(n->serial());
    // A node's local index within its member area is id.local in both the
    // non-root and the area-root case (Def. 3).
    area_members_[area].by_local.emplace_back(id.local, n);
  });
  for (uint32_t i = 0; i < partition.areas.size(); ++i) {
    if (partition.areas[i].root == nullptr) continue;
    const Ruid2Id& root_id = scheme_->label(partition.areas[i].root);
    area_members_[i].global = root_id.global;
    area_members_[i].fanout = partition.areas[i].local_fanout;
    std::sort(area_members_[i].by_local.begin(),
              area_members_[i].by_local.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    area_index_[area_members_[i].global] = i;
  }
}

const RuidAxes::AreaMembers* RuidAxes::FindArea(const BigUint& global) const {
  auto it = area_index_.find(global);
  return it == area_index_.end() ? nullptr : &area_members_[it->second];
}

void RuidAxes::AppendChildrenInRange(const AreaMembers& area, const BigUint& lo,
                                     const BigUint& hi,
                                     std::vector<xml::Node*>* out) const {
  auto begin = std::lower_bound(
      area.by_local.begin(), area.by_local.end(), lo,
      [](const auto& entry, const BigUint& v) { return entry.first < v; });
  for (auto it = begin; it != area.by_local.end() && it->first <= hi; ++it) {
    out->push_back(it->second);
  }
}

std::vector<xml::Node*> RuidAxes::Ancestors(const Ruid2Id& id) const {
  std::vector<xml::Node*> out;
  for (const Ruid2Id& a : scheme_->Ancestors(id)) {
    xml::Node* n = scheme_->NodeById(a);
    if (n != nullptr) out.push_back(n);
  }
  return out;
}

std::vector<Ruid2Id> RuidAxes::ChildSlots(const Ruid2Id& id) const {
  std::vector<Ruid2Id> slots;
  // Children are enumerated in the area identified by id.global — the node's
  // own area when it is an area root, its containing area otherwise.
  const BigUint& g = id.global;
  const KRow* row = scheme_->ktable().Find(g);
  if (row == nullptr) return slots;
  uint64_t k = row->fanout;
  BigUint alpha = id.is_area_root ? BigUint(1) : id.local;

  // L1 of the paper: the child areas of g in the frame, as
  // (global, root_local) pairs taken from table K.
  std::vector<const KRow*> frame_children;
  for (uint64_t j = 0; j < scheme_->kappa(); ++j) {
    BigUint theta = UidChild(g, scheme_->kappa(), j);
    const KRow* child_row = scheme_->ktable().Find(theta);
    if (child_row != nullptr) frame_children.push_back(child_row);
  }

  slots.reserve(k);
  for (uint64_t j = 0; j < k; ++j) {
    BigUint local = UidChild(alpha, k, j);
    const KRow* area_root_row = nullptr;
    for (const KRow* child_row : frame_children) {
      if (child_row->root_local == local) {
        area_root_row = child_row;
        break;
      }
    }
    if (area_root_row != nullptr) {
      slots.push_back(Ruid2Id{area_root_row->global, std::move(local), true});
    } else {
      slots.push_back(Ruid2Id{g, std::move(local), false});
    }
  }
  return slots;
}

std::vector<xml::Node*> RuidAxes::Children(const Ruid2Id& id) const {
  std::vector<xml::Node*> out;
  const AreaMembers* area = FindArea(id.global);
  if (area == nullptr) return out;
  // Child locals occupy the contiguous range [(α-1)k+2, αk+1]; one range
  // search in the local-sorted member list yields them in document order.
  uint64_t k = area->fanout;
  BigUint alpha = id.is_area_root ? BigUint(1) : id.local;
  BigUint lo = UidChild(alpha, k, 0);
  BigUint hi = UidChild(alpha, k, k - 1);
  AppendChildrenInRange(*area, lo, hi, &out);
  return out;
}

std::vector<xml::Node*> RuidAxes::Descendants(const Ruid2Id& id) const {
  std::vector<xml::Node*> out;
  // Phase 1: within-area walk by repeated rchildren; collect the globals of
  // the child areas rooted at descendants found along the way.
  std::vector<BigUint> subtree_roots;
  std::vector<Ruid2Id> queue;
  if (id.is_area_root) {
    subtree_roots.push_back(id.global);
  } else {
    queue.push_back(id);
  }
  while (!queue.empty()) {
    Ruid2Id cur = std::move(queue.back());
    queue.pop_back();
    for (xml::Node* child : Children(cur)) {
      out.push_back(child);
      const Ruid2Id& child_id = scheme_->label(child);
      if (child_id.is_area_root) {
        subtree_roots.push_back(child_id.global);
      } else {
        queue.push_back(child_id);
      }
    }
  }
  // Phase 2: swallow whole every area whose root is a frame descendant-or-
  // self of a collected area root (their members are descendants by
  // construction).
  if (!subtree_roots.empty()) {
    for (const AreaMembers& am : area_members_) {
      if (am.by_local.empty()) continue;
      bool in_subtree = false;
      for (const BigUint& theta : subtree_roots) {
        if (am.global == theta ||
            UidIsAncestor(theta, am.global, scheme_->kappa())) {
          in_subtree = true;
          break;
        }
      }
      if (in_subtree) {
        // id itself is a member of its *upper* area, never of these
        // subtree areas, so no self-exclusion is needed; deeper area roots
        // appear exactly once, as members of their upper area.
        for (const auto& [local, node] : am.by_local) {
          out.push_back(node);
        }
      }
    }
  }
  return out;
}

std::vector<xml::Node*> RuidAxes::PrecedingSiblings(const Ruid2Id& id) const {
  std::vector<xml::Node*> out;
  auto parent = scheme_->Parent(id);
  if (!parent.ok()) return out;
  // Siblings are enumerated where the parent's children live: the parent's
  // own area when it is an area root, its containing area otherwise. Both
  // are parent->global (Def. 3). Note id.global would be wrong when id is
  // itself an area root.
  const AreaMembers* area = FindArea(parent->global);
  if (area == nullptr || id.local < BigUint(2)) return out;
  uint64_t k = area->fanout;
  BigUint alpha = parent->is_area_root ? BigUint(1) : parent->local;
  BigUint lo = UidChild(alpha, k, 0);
  AppendChildrenInRange(*area, lo, id.local - 1, &out);
  std::reverse(out.begin(), out.end());  // nearest sibling first
  return out;
}

std::vector<xml::Node*> RuidAxes::FollowingSiblings(const Ruid2Id& id) const {
  std::vector<xml::Node*> out;
  auto parent = scheme_->Parent(id);
  if (!parent.ok()) return out;
  const AreaMembers* area = FindArea(parent->global);
  if (area == nullptr) return out;
  uint64_t k = area->fanout;
  BigUint alpha = parent->is_area_root ? BigUint(1) : parent->local;
  BigUint hi = UidChild(alpha, k, k - 1);
  AppendChildrenInRange(*area, id.local + 1, hi, &out);
  return out;
}

std::vector<xml::Node*> RuidAxes::Preceding(const Ruid2Id& id) const {
  std::vector<xml::Node*> out;
  const BigUint& theta = id.global;
  uint64_t kappa = scheme_->kappa();
  // Ancestors must be excluded from the preceding axis; they can only live
  // in the node's own area or in frame-ancestor areas.
  std::unordered_set<Ruid2Id, Ruid2IdHash> ancestors;
  for (const Ruid2Id& a : scheme_->Ancestors(id)) ancestors.insert(a);

  for (const AreaMembers& am : area_members_) {
    if (am.by_local.empty()) continue;
    if (am.global == theta || UidIsAncestor(am.global, theta, kappa)) {
      // On the frame path of id: per-node comparison plus ancestor filter.
      for (const auto& [local, n] : am.by_local) {
        const Ruid2Id& x = scheme_->label(n);
        if (ancestors.contains(x)) continue;
        if (scheme_->CompareIds(x, id) < 0) out.push_back(n);
      }
    } else if (UidIsAncestor(theta, am.global, kappa)) {
      // Frame-descendant area: contains no ancestors of id, but its gateway
      // may put it before or after id — compare per node.
      for (const auto& [local, n] : am.by_local) {
        if (scheme_->CompareIds(scheme_->label(n), id) < 0) out.push_back(n);
      }
    } else {
      // Order-comparable in the frame: Lemma 3 decides wholesale.
      if (UidCompareOrder(am.global, theta, kappa) < 0) {
        for (const auto& [local, n] : am.by_local) out.push_back(n);
      }
    }
  }
  return out;
}

std::vector<xml::Node*> RuidAxes::Following(const Ruid2Id& id) const {
  std::vector<xml::Node*> out;
  const BigUint& theta = id.global;
  uint64_t kappa = scheme_->kappa();

  for (const AreaMembers& am : area_members_) {
    if (am.by_local.empty()) continue;
    if (am.global == theta || UidIsAncestor(theta, am.global, kappa)) {
      // Own area or frame-descendant: may contain descendants of id, which
      // the following axis excludes.
      for (const auto& [local, n] : am.by_local) {
        const Ruid2Id& x = scheme_->label(n);
        if (scheme_->CompareIds(x, id) > 0 && !scheme_->IsAncestorId(id, x)) {
          out.push_back(n);
        }
      }
    } else if (UidIsAncestor(am.global, theta, kappa)) {
      // Frame-ancestor area: contains no descendants of id.
      for (const auto& [local, n] : am.by_local) {
        if (scheme_->CompareIds(scheme_->label(n), id) > 0) out.push_back(n);
      }
    } else {
      if (UidCompareOrder(am.global, theta, kappa) > 0) {
        for (const auto& [local, n] : am.by_local) out.push_back(n);
      }
    }
  }
  return out;
}

}  // namespace core
}  // namespace ruidx
