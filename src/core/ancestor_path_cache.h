// Per-area memoization of frame ancestor chains.
//
// rparent() (Fig. 6) recovers a node's ancestors by repeated BigUint
// division, and every Ancestors/CompareIds/axis/join call re-derives the
// same chains from scratch. But by Defs. 1-3 every node of a UID-local area
// shares the ancestor chain of its area root from the area root upward: the
// only per-node work is the short climb inside the node's own area (bounded
// by the partition's area-depth budget). This cache memoizes, per area
// global index, the proper-ancestor chain of the area root, so the frame
// part of every chain is computed once per area instead of once per call.
//
// Invalidation is driven by the Sec. 3.2 update accounting (UpdateReport):
// a cached chain embeds area-root identifiers (whose locals change when an
// area is re-enumerated), K-row root_local values, and per-area fan-outs,
// so any update that relabels existing nodes, drops areas, or grows a local
// fan-out flushes the cache wholesale. Updates that only append fresh
// labels (relabeled == 0, no drops, no fan-out growth) leave every cached
// chain valid.
#ifndef RUIDX_CORE_ANCESTOR_PATH_CACHE_H_
#define RUIDX_CORE_ANCESTOR_PATH_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/packed_ruid2_id.h"
#include "core/ruid2_id.h"
#include "util/sync.h"

namespace ruidx {
namespace core {

class AncestorPathCache {
 public:
  AncestorPathCache() = default;

  // The cache is per-scheme memo state guarded by a mutex; copied or moved
  // schemes start with a cold cache (only the enabled flag carries over).
  AncestorPathCache(const AncestorPathCache& o) : enabled_(o.enabled_) {}
  AncestorPathCache(AncestorPathCache&& o) noexcept : enabled_(o.enabled_) {}
  AncestorPathCache& operator=(const AncestorPathCache& o) {
    enabled_ = o.enabled_;
    Clear();
    return *this;
  }
  AncestorPathCache& operator=(AncestorPathCache&& o) noexcept {
    enabled_ = o.enabled_;
    Clear();
    return *this;
  }

  /// Full proper-ancestor chain of `id`, nearest first — the rancestor()
  /// result. Climbs inside the node's own area with rparent, then appends
  /// the memoized chain of the area root.
  std::vector<Ruid2Id> Ancestors(const Ruid2Id& id, uint64_t kappa,
                                 const KTable& k) const;

  /// Packed-identifier variant: writes the full proper-ancestor chain of
  /// `id`, nearest first, into *out using pure uint64 arithmetic and the
  /// packed per-area memo. Returns false (with *out unspecified) when any
  /// identifier on the chain is outside the packed range — the caller then
  /// uses Ancestors(). Shares the hit/miss/invalidate accounting with the
  /// BigUint chains.
  bool AncestorsPacked(const PackedRuid2Id& id, uint64_t kappa,
                       const KTable& k, std::vector<PackedRuid2Id>* out) const;

  /// Hybrid variant for callers that need BigUint identifiers: the climb
  /// inside the node's own area — the only fresh divisions — runs on packed
  /// machine-word arithmetic, then the memoized BigUint chain of the area
  /// root is appended directly, with no per-element unpacking of the shared
  /// tail. This also covers areas whose root chain leaves the packed range:
  /// only the member's own climb has to stay packed. Returns false (with
  /// *out holding a partial prefix) when the climb falls back — the caller
  /// then uses Ancestors().
  bool AncestorsHybrid(const PackedRuid2Id& id, uint64_t kappa,
                       const KTable& k, std::vector<Ruid2Id>* out) const;

  /// Proper-ancestor chain of the root of the area with global index
  /// `global`, nearest first. The pointer stays valid until the next
  /// Invalidate()/Clear() (entries are node-stable) — so this form is for
  /// single-threaded callers (tests, the invariant verifier); concurrent
  /// readers go through Ancestors()/AncestorsPacked(), which copy the
  /// memoized tail while holding the cache lock.
  const std::vector<Ruid2Id>* AreaRootAncestors(const BigUint& global,
                                                uint64_t kappa,
                                                const KTable& k) const;

  /// Invalidation hook for the incremental-update paths: flushes every
  /// entry when the report shows relabels, dropped areas, or local fan-out
  /// growth; keeps the cache warm for append-only updates.
  void OnUpdate(const UpdateReport& report);

  /// Drops every cached chain (full rebuilds, external relabeling).
  void Clear();

  /// Disabling turns every lookup into a cold rparent() walk — the
  /// uncached baseline the benchmarks compare against.
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_; }

  // --- statistics (for tests and the bench tables) --------------------------
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t invalidations() const;
  size_t entry_count() const;

 private:
  /// Corruption injection for the invariant-verifier tests (defined there).
  friend class AncestorPathCacheTestPeer;

  /// Cold chain computation by repeated rparent, no memoization.
  static std::vector<Ruid2Id> UncachedChain(const Ruid2Id& id, uint64_t kappa,
                                            const KTable& k);

  /// A memoized packed area chain. `ok == false` is a cached negative: the
  /// area's root chain leaves the packed range, so packed queries against it
  /// fall back without re-deriving the failure every call.
  struct PackedChainEntry {
    bool ok = false;
    std::vector<PackedRuid2Id> chain;
  };

  /// Packed twin of AreaRootAncestors over packed_chains_. The returned
  /// entry is node-stable until the next Clear(); single-threaded callers
  /// only, like its BigUint twin.
  const PackedChainEntry* PackedAreaRootAncestors(uint128_t global,
                                                  uint64_t kappa,
                                                  const KTable& k) const;

  /// Appends the memoized chain of area `global` to *chain, copying under
  /// mu_ so a concurrent Clear()/OnUpdate() cannot destroy the entry
  /// mid-copy (computes and publishes the chain first on a miss).
  void AppendAreaRootChain(const BigUint& global, uint64_t kappa,
                           const KTable& k,
                           std::vector<Ruid2Id>* chain) const;

  /// Packed twin of AppendAreaRootChain; returns the entry's `ok` flag
  /// (false = cached negative, caller falls back to BigUint).
  bool AppendPackedAreaRootChain(uint128_t global, uint64_t kappa,
                                 const KTable& k,
                                 std::vector<PackedRuid2Id>* out) const;

  /// Set before the scheme is shared (benchmarks toggle it up front, never
  /// while readers run), so deliberately unguarded.
  bool enabled_ = true;
  /// Guards chains_, packed_chains_, and the counters; Ancestors() must be
  /// callable from concurrent readers (the bulk pipelines share one
  /// scheme). Leaf-side rank: taken while a store holds its pool mutex
  /// during invalidation (rank table in util/sync.h).
  mutable Mutex mu_{LockRank::kAncestorCache, "ancestor_cache.mu"};
  mutable std::unordered_map<BigUint, std::vector<Ruid2Id>, BigUintHash>
      chains_ RUIDX_GUARDED_BY(mu_);
  /// Per-area chains in packed form, for areas whose whole root chain fits
  /// the packed range. Separate from chains_ so each path pays only its own
  /// representation; an area queried through both APIs may appear in both.
  mutable std::unordered_map<uint128_t, PackedChainEntry, Uint128Hash>
      packed_chains_ RUIDX_GUARDED_BY(mu_);
  mutable uint64_t hits_ RUIDX_GUARDED_BY(mu_) = 0;
  mutable uint64_t misses_ RUIDX_GUARDED_BY(mu_) = 0;
  uint64_t invalidations_ RUIDX_GUARDED_BY(mu_) = 0;
};

}  // namespace core
}  // namespace ruidx

#endif  // RUIDX_CORE_ANCESTOR_PATH_CACHE_H_
