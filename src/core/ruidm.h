// Multilevel recursive UID (Def. 4 / Sec. 2.4 of the paper).
//
// The frame of a 2-level ruid is itself a tree; re-partitioning it yields a
// 3-level scheme, and so on. An l-level identifier is
//     { θ, (α_{l-1}, β_{l-1}), ..., (α_1, β_1) }
// where (α_j, β_j) is the node's local index / root indicator inside its
// UID-local area at level j, that area being identified by the id prefix
// — the multilevel identifier of the area's root one level up — and θ is a
// plain UID at the top level. Every component stays small even when a flat
// enumeration would overflow: with m levels one can address ≈ e^m nodes
// (Sec. 3.1).
//
// parent() generalizes Fig. 6 recursively and still runs on in-memory
// tables only: one K table per level, keyed by the id prefix.
#ifndef RUIDX_CORE_RUIDM_H_
#define RUIDX_CORE_RUIDM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/ruid2.h"
#include "scheme/uid.h"
#include "util/result.h"
#include "xml/dom.h"

namespace ruidx {
namespace util {
class ThreadPool;
}  // namespace util

namespace core {

/// \brief An l-level identifier (Def. 4).
struct RuidMId {
  BigUint theta;
  /// (α_j, β_j) pairs ordered from level l-1 (front) down to level 1 (back).
  std::vector<std::pair<BigUint, bool>> path;

  bool operator==(const RuidMId& o) const {
    return theta == o.theta && path == o.path;
  }
  bool operator!=(const RuidMId& o) const { return !(*this == o); }
  bool operator<(const RuidMId& o) const;

  /// "{θ, (α, β), ...}" in the notation of the paper.
  std::string ToString() const;

  /// Bit width of the widest component — the quantity the multilevel scheme
  /// keeps bounded (Sec. 3.1).
  uint64_t MaxComponentBits() const;
};

/// \brief Multilevel ruid over a DOM tree.
class RuidMScheme {
 public:
  /// \param levels total number of levels l >= 1 (1 = plain UID, 2 = Ruid2).
  /// \param options partitioning budgets applied at every level.
  explicit RuidMScheme(int levels, PartitionOptions options = {})
      : levels_(levels), options_(std::move(options)) {}

  Status Build(xml::Node* root);

  /// Parallel build: the levels are stacked sequentially (level j+1 is the
  /// frame of level j), but within each level the UID-local areas enumerate
  /// concurrently on `pool` via Ruid2Scheme's parallel path. Identifiers
  /// are identical for every thread count.
  Status Build(xml::Node* root, util::ThreadPool* pool);

  int levels() const { return levels_; }

  const RuidMId& IdOf(const xml::Node* n) const { return ids_.at(n->serial()); }
  bool HasId(const xml::Node* n) const { return ids_.contains(n->serial()); }

  xml::Node* NodeById(const RuidMId& id) const;

  /// Recursive rparent(): pure arithmetic over the per-level K tables.
  Result<RuidMId> Parent(const RuidMId& id) const;

  bool IsAncestorId(const RuidMId& a, const RuidMId& d) const;

  /// Document-order comparison (ancestors precede descendants).
  int CompareIds(const RuidMId& a, const RuidMId& b) const;

  /// Number of labeled nodes of the source tree.
  size_t id_count() const { return ids_.size(); }

  /// Widest component over all assigned identifiers.
  uint64_t MaxComponentBits() const;

  /// Total bits over all identifiers (components + root flags).
  uint64_t TotalIdBits() const;

  /// In-memory footprint of all per-level K tables.
  uint64_t GlobalStateBytes() const;

  /// Number of nodes at the top level (size of the last frame).
  size_t top_level_size() const { return top_uid_.size(); }

  /// Cheap re-encode check: true iff the node currently has this id.
  bool IdMatches(const xml::Node* n, const RuidMId& id) const {
    auto it = ids_.find(n->serial());
    return it != ids_.end() && it->second == id;
  }

 private:
  struct KEntry {
    BigUint root_local;
    uint64_t fanout = 1;
  };
  /// One per level j in [1, levels-1]: K_j keyed by the id prefix (the
  /// multilevel id of the area root at level j+1).
  using KMap = std::map<RuidMId, KEntry>;

  /// id restricted to levels j.. (drops the last `drop` path components).
  static RuidMId Prefix(const RuidMId& id, size_t drop);

  Result<RuidMId> ParentAtLevel(const RuidMId& id, size_t level_index) const;

  int levels_;
  PartitionOptions options_;
  std::vector<KMap> ktables_;  // index 0 <-> level 1
  uint64_t top_kappa_ = 1;
  std::map<RuidMId, xml::Node*> by_id_;
  std::unordered_map<uint32_t, RuidMId> ids_;  // source-tree serial -> id
  std::unordered_map<uint32_t, BigUint> top_uid_;  // top-mirror serial -> θ
  /// Mirror documents for trees at levels 2..l (kept alive for debugging
  /// and for the frame-size statistics the benches report).
  std::vector<std::unique_ptr<xml::Document>> mirrors_;
};

/// \brief Multilevel ruid behind the generic LabelingScheme interface, for
/// the cross-scheme benchmarks. Updates rebuild the whole stack (the
/// incremental Sec. 3.2 machinery is 2-level only), so RelabelAndCount is a
/// full-rebuild diff — shown as such in the E11 table.
class RuidMLabeling : public scheme::LabelingScheme {
 public:
  explicit RuidMLabeling(int levels, PartitionOptions options = {})
      : levels_(levels), options_(std::move(options)), scheme_(levels, options_) {}

  std::string name() const override {
    return "ruidm" + std::to_string(levels_);
  }
  void Build(xml::Node* root) override;
  bool IsParent(const xml::Node* p, const xml::Node* c) const override;
  bool IsAncestor(const xml::Node* a, const xml::Node* d) const override;
  int CompareOrder(const xml::Node* a, const xml::Node* b) const override;
  uint64_t LabelBits(const xml::Node* n) const override;
  uint64_t TotalLabelBits() const override;
  std::string LabelString(const xml::Node* n) const override;
  uint64_t RelabelAndCount(xml::Node* root) override;

  const RuidMScheme& scheme() const { return scheme_; }

 private:
  int levels_;
  PartitionOptions options_;
  RuidMScheme scheme_;
};

}  // namespace core
}  // namespace ruidx

#endif  // RUIDX_CORE_RUIDM_H_
