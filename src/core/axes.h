// XPath-axis construction from ruid identifiers (Sec. 3.5 of the paper):
// rparent, rancestor, rchildren, rdescendant, rpsibling, rfsibling,
// rpreceding and rfollowing.
//
// Each generator comes in two flavours where the paper describes both: a
// *candidate* flavour that is pure identifier arithmetic (and may name
// virtual nodes — slots the enumeration reserves but no real node occupies),
// and a *filtered* flavour that intersects the candidates with the index of
// real identifiers, the in-memory stand-in for the paper's RDBMS index.
#ifndef RUIDX_CORE_AXES_H_
#define RUIDX_CORE_AXES_H_

#include <vector>

#include "core/ruid2.h"

namespace ruidx {
namespace core {

class RuidAxes {
 public:
  /// The scheme must outlive this object. Call Refresh() after structural
  /// updates to rebuild the per-area member index.
  explicit RuidAxes(const Ruid2Scheme* scheme);

  /// Rebuilds the area -> members index from the scheme's current labels.
  void Refresh();

  // --- parent / ancestor ----------------------------------------------------

  /// rancestor(): ancestor identifiers, nearest first (pure arithmetic).
  std::vector<Ruid2Id> AncestorIds(const Ruid2Id& id) const {
    return scheme_->Ancestors(id);
  }

  /// Ancestor nodes, nearest first (candidates filtered against the index).
  std::vector<xml::Node*> Ancestors(const Ruid2Id& id) const;

  // --- child / descendant ---------------------------------------------------

  /// rchildren(): every child *slot* of the node, with the correct
  /// identifier shape — (θ', i, true) where table K names an area root at
  /// slot i, (g, i, false) otherwise. Includes virtual slots.
  std::vector<Ruid2Id> ChildSlots(const Ruid2Id& id) const;

  /// Real children, in document order.
  std::vector<xml::Node*> Children(const Ruid2Id& id) const;

  /// rdescendant() via the frame (Sec. 3.5): descendants inside the node's
  /// own area are found with repeated rchildren; every area whose root is a
  /// frame descendant is then swallowed whole.
  std::vector<xml::Node*> Descendants(const Ruid2Id& id) const;

  // --- siblings ---------------------------------------------------------------

  /// rpsibling(): real preceding siblings, nearest first.
  std::vector<xml::Node*> PrecedingSiblings(const Ruid2Id& id) const;

  /// rfsibling(): real following siblings, nearest first.
  std::vector<xml::Node*> FollowingSiblings(const Ruid2Id& id) const;

  // --- preceding / following -------------------------------------------------

  /// rpreceding(): all real nodes before `id` in document order, excluding
  /// its ancestors. Areas that are order-comparable in the frame (Lemma 3)
  /// are accepted or rejected wholesale; only the areas on the frame path of
  /// `id` need per-node work.
  std::vector<xml::Node*> Preceding(const Ruid2Id& id) const;

  /// rfollowing(): all real nodes after `id`, excluding its descendants.
  std::vector<xml::Node*> Following(const Ruid2Id& id) const;

 private:
  struct AreaMembers {
    BigUint global;
    uint64_t fanout = 1;
    /// All nodes enumerated in this area (area-root children included),
    /// sorted by their local index — the in-memory analogue of the paper's
    /// storage order "sorted first by the global index, and then by local
    /// index" (Sec. 2.1). Child sets are contiguous local ranges here.
    std::vector<std::pair<BigUint, xml::Node*>> by_local;
  };

  const AreaMembers* FindArea(const BigUint& global) const;
  /// Real children via a local-index range search in the sorted member
  /// list: O(log area + result), the Sec. 4 storage-order optimization.
  void AppendChildrenInRange(const AreaMembers& area, const BigUint& lo,
                             const BigUint& hi,
                             std::vector<xml::Node*>* out) const;

  const Ruid2Scheme* scheme_;
  std::vector<AreaMembers> area_members_;  // indexed by area index
  std::unordered_map<BigUint, size_t, BigUintHash> area_index_;
};

}  // namespace core
}  // namespace ruidx

#endif  // RUIDX_CORE_AXES_H_
