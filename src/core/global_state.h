// Serialization of the ruid global parameters (κ and table K, Sec. 2.1).
//
// The pair (κ, K) is everything rparent() and the order routines need; it
// is deliberately small ("loaded into the main memory during travelling
// T"). Persisting it lets a process answer structural queries over
// identifiers — ancestor checks, order comparisons, axis candidate
// generation — without the document, e.g. next to an element store or on a
// remote site (Sec. 4, "managing data sources scattered over several
// sites").
#ifndef RUIDX_CORE_GLOBAL_STATE_H_
#define RUIDX_CORE_GLOBAL_STATE_H_

#include <cstdint>
#include <string>
#include <utility>

#include "core/ktable.h"
#include "util/result.h"
#include "util/sync.h"

namespace ruidx {
namespace core {

struct GlobalState {
  uint64_t kappa = 1;
  KTable ktable;
};

/// Binary encoding (versioned, endian-stable).
std::string SerializeGlobalState(uint64_t kappa, const KTable& ktable);

/// Inverse of SerializeGlobalState. Fails on truncated or foreign input.
Result<GlobalState> DeserializeGlobalState(std::string_view data);

/// Convenience file wrappers.
Status SaveGlobalState(uint64_t kappa, const KTable& ktable,
                       const std::string& path);
Result<GlobalState> LoadGlobalState(const std::string& path);

/// A (κ, K) holder shared across threads: query workers snapshot it, an
/// updater stores new state after a relabeling — the concurrency shape the
/// Sec. 4 distributed deployment needs (remote sites answer structural
/// queries from a replicated (κ, K) that update propagation overwrites).
/// Each Store bumps a version counter so a reader can cheaply detect that
/// its snapshot went stale and re-pull.
class SharedGlobalState {
 public:
  SharedGlobalState() = default;
  explicit SharedGlobalState(GlobalState initial) : state_(std::move(initial)) {
    // The constructor runs before sharing; the analysis exempts it.
  }

  SharedGlobalState(const SharedGlobalState&) = delete;
  SharedGlobalState& operator=(const SharedGlobalState&) = delete;

  /// A consistent copy of the current (κ, K) — never a torn mix of two
  /// stores. KTable is a value type, so the copy is self-contained.
  GlobalState Snapshot() const {
    MutexLock lock(&mu_);
    return state_;
  }

  /// Replaces the state wholesale and returns the new version. Partial
  /// mutation is deliberately not offered: κ and K change together or not
  /// at all (a K row interpreted under the wrong κ mislabels every node).
  uint64_t Store(GlobalState next) {
    MutexLock lock(&mu_);
    state_ = std::move(next);
    return ++version_;
  }

  /// Monotone counter: 0 until the first Store.
  uint64_t version() const {
    MutexLock lock(&mu_);
    return version_;
  }

 private:
  /// Innermost among the storage ranks: held only around the copy/swap,
  /// never while calling out (rank table in util/sync.h).
  mutable Mutex mu_{LockRank::kGlobalState, "global_state.mu"};
  GlobalState state_ RUIDX_GUARDED_BY(mu_);
  uint64_t version_ RUIDX_GUARDED_BY(mu_) = 0;
};

}  // namespace core
}  // namespace ruidx

#endif  // RUIDX_CORE_GLOBAL_STATE_H_
