// Serialization of the ruid global parameters (κ and table K, Sec. 2.1).
//
// The pair (κ, K) is everything rparent() and the order routines need; it
// is deliberately small ("loaded into the main memory during travelling
// T"). Persisting it lets a process answer structural queries over
// identifiers — ancestor checks, order comparisons, axis candidate
// generation — without the document, e.g. next to an element store or on a
// remote site (Sec. 4, "managing data sources scattered over several
// sites").
#ifndef RUIDX_CORE_GLOBAL_STATE_H_
#define RUIDX_CORE_GLOBAL_STATE_H_

#include <string>

#include "core/ktable.h"
#include "util/result.h"

namespace ruidx {
namespace core {

struct GlobalState {
  uint64_t kappa = 1;
  KTable ktable;
};

/// Binary encoding (versioned, endian-stable).
std::string SerializeGlobalState(uint64_t kappa, const KTable& ktable);

/// Inverse of SerializeGlobalState. Fails on truncated or foreign input.
Result<GlobalState> DeserializeGlobalState(std::string_view data);

/// Convenience file wrappers.
Status SaveGlobalState(uint64_t kappa, const KTable& ktable,
                       const std::string& path);
Result<GlobalState> LoadGlobalState(const std::string& path);

}  // namespace core
}  // namespace ruidx

#endif  // RUIDX_CORE_GLOBAL_STATE_H_
