// Table K (Sec. 2.1): one row per UID-local area, holding the area's global
// index, the local index of the area's root inside the upper area, and the
// area's local maximal fan-out. Together with the frame fan-out κ this is
// the only state rparent() needs, and it is small enough to live in main
// memory — which is the whole point of the scheme.
#ifndef RUIDX_CORE_KTABLE_H_
#define RUIDX_CORE_KTABLE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "util/biguint.h"

namespace ruidx {
namespace core {

struct KRow {
  BigUint global;      // global index of the area
  BigUint root_local;  // local index of the area's root in the upper area
  uint64_t fanout;     // local maximal fan-out k_i of the area

  bool operator==(const KRow&) const = default;
};

/// Rows kept sorted by global index ("the table K is sorted according to the
/// global index"), looked up by binary search.
class KTable {
 public:
  /// Inserts or replaces the row for `row.global`.
  void Upsert(KRow row);

  /// Removes the row for `global`; no-op when absent.
  void Erase(const BigUint& global);

  /// The row for `global`, or nullptr.
  const KRow* Find(const BigUint& global) const;

  /// Mutable access to the row for `global`, or nullptr. Callers must not
  /// modify the key (`global`).
  KRow* FindMutable(const BigUint& global);

  /// True iff some area with global index `global` has its root at local
  /// index `local` in the upper area (the existence test of rchildren,
  /// Sec. 3.5).
  bool IsAreaRootSlot(const BigUint& global, const BigUint& local) const {
    const KRow* row = Find(global);
    return row != nullptr && row->root_local == local;
  }

  size_t size() const { return rows_.size(); }
  const std::vector<KRow>& rows() const { return rows_; }
  void Clear() { rows_.clear(); }

  /// Approximate main-memory footprint, reported by the benchmarks.
  uint64_t SizeInBytes() const;

 private:
  std::vector<KRow> rows_;
};

}  // namespace core
}  // namespace ruidx

#endif  // RUIDX_CORE_KTABLE_H_
