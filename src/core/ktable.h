// Table K (Sec. 2.1): one row per UID-local area, holding the area's global
// index, the local index of the area's root inside the upper area, and the
// area's local maximal fan-out. Together with the frame fan-out κ this is
// the only state rparent() needs, and it is small enough to live in main
// memory — which is the whole point of the scheme.
#ifndef RUIDX_CORE_KTABLE_H_
#define RUIDX_CORE_KTABLE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "util/biguint.h"

namespace ruidx {
namespace core {

struct KRow {
  BigUint global;      // global index of the area
  BigUint root_local;  // local index of the area's root in the upper area
  uint64_t fanout;     // local maximal fan-out k_i of the area

  bool operator==(const KRow&) const = default;
};

/// The machine-word mirror of a K row, for the packed rparent fast path.
/// Only rows whose global index fits in 128 bits (the 2-word packed global
/// range) and whose root_local fits in 63 bits (the packed local range)
/// have one.
struct PackedKRow {
  uint128_t global;
  uint64_t root_local;
  uint64_t fanout;
};

/// Rows kept sorted by global index ("the table K is sorted according to the
/// global index"), looked up by binary search. A parallel sorted vector of
/// PackedKRow mirrors every row within the packed range, so the fast path
/// binary-searches plain uint64 keys; the two representations are kept in
/// sync by routing every mutation through Upsert/Erase/SetFanout/
/// SetRootLocal.
class KTable {
 public:
  /// Inserts or replaces the row for `row.global`.
  void Upsert(KRow row);

  /// Removes the row for `global`; no-op when absent.
  void Erase(const BigUint& global);

  /// The row for `global`, or nullptr.
  const KRow* Find(const BigUint& global) const;

  /// The packed mirror row for `global`, or nullptr when the row is absent
  /// *or* outside the packed range (callers fall back to Find()).
  const PackedKRow* FindPacked(uint128_t global) const;

  /// Updates the fan-out of the row for `global`; returns false when the
  /// row is absent.
  bool SetFanout(const BigUint& global, uint64_t fanout);

  /// Updates the root_local of the row for `global`; returns false when the
  /// row is absent.
  bool SetRootLocal(const BigUint& global, BigUint root_local);

  /// True iff some area with global index `global` has its root at local
  /// index `local` in the upper area (the existence test of rchildren,
  /// Sec. 3.5).
  bool IsAreaRootSlot(const BigUint& global, const BigUint& local) const {
    const KRow* row = Find(global);
    return row != nullptr && row->root_local == local;
  }

  size_t size() const { return rows_.size(); }
  const std::vector<KRow>& rows() const { return rows_; }
  /// Number of rows mirrored into the packed fast path (for stats/tests).
  size_t packed_size() const { return packed_rows_.size(); }

  /// True iff the packed mirror holds exactly what it should for `row`:
  /// a byte-equal PackedKRow when (global, root_local) are within the
  /// packed range, and no entry otherwise. Probed by the mutation-point
  /// RUIDX_DCHECKs and by the analysis::CheckDocumentInvariants verifier.
  bool PackedMirrorAgrees(const KRow& row) const;
  void Clear() {
    rows_.clear();
    packed_rows_.clear();
  }

  /// Approximate main-memory footprint, reported by the benchmarks.
  uint64_t SizeInBytes() const;

 private:
  /// Corruption injection for the invariant-verifier tests (defined there).
  friend class KTableTestPeer;

  /// Re-derives the packed mirror entry for `row` (insert, update, or drop
  /// when the row left the packed range).
  void SyncPacked(const KRow& row);
  void ErasePacked(const BigUint& global);

  std::vector<KRow> rows_;
  std::vector<PackedKRow> packed_rows_;  // sorted by global
};

}  // namespace core
}  // namespace ruidx

#endif  // RUIDX_CORE_KTABLE_H_
