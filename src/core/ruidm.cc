#include "core/ruidm.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "util/dcheck.h"

namespace ruidx {
namespace core {

using scheme::UidParent;

bool RuidMId::operator<(const RuidMId& o) const {
  if (theta != o.theta) return theta < o.theta;
  if (path.size() != o.path.size()) return path.size() < o.path.size();
  for (size_t i = 0; i < path.size(); ++i) {
    if (path[i].first != o.path[i].first) return path[i].first < o.path[i].first;
    if (path[i].second != o.path[i].second) return !path[i].second;
  }
  return false;
}

std::string RuidMId::ToString() const {
  std::ostringstream os;
  os << "{" << theta.ToDecimalString();
  for (const auto& [alpha, beta] : path) {
    os << ", (" << alpha.ToDecimalString() << ", "
       << (beta ? "true" : "false") << ")";
  }
  os << "}";
  return os.str();
}

uint64_t RuidMId::MaxComponentBits() const {
  uint64_t bits = static_cast<uint64_t>(theta.BitWidth());
  for (const auto& [alpha, beta] : path) {
    bits = std::max(bits, static_cast<uint64_t>(alpha.BitWidth()));
  }
  return bits;
}

RuidMId RuidMScheme::Prefix(const RuidMId& id, size_t drop) {
  RuidMId out;
  out.theta = id.theta;
  out.path.assign(id.path.begin(),
                  id.path.end() - static_cast<long>(drop));
  return out;
}

Status RuidMScheme::Build(xml::Node* root) { return Build(root, nullptr); }

Status RuidMScheme::Build(xml::Node* root, util::ThreadPool* pool) {
  if (levels_ < 1) return Status::InvalidArgument("levels must be >= 1");
  ktables_.clear();
  by_id_.clear();
  ids_.clear();
  top_uid_.clear();
  mirrors_.clear();

  // Stack the levels: at each level j < levels_, partition tree_j with a
  // Ruid2 pass, keep (α_j, β_j) per node, and mirror the frame into
  // tree_{j+1}. The top tree gets a plain UID (θ).
  struct LevelBuild {
    Ruid2Scheme scheme;
    // tree_j area-root serial -> mirror node in tree_{j+1}.
    std::unordered_map<uint32_t, xml::Node*> to_mirror;
  };
  std::vector<LevelBuild> built;
  std::vector<xml::Node*> level_roots{root};

  xml::Node* cur_root = root;
  for (int j = 1; j < levels_; ++j) {
    LevelBuild lb{Ruid2Scheme(options_), {}};
    lb.scheme.Build(cur_root, pool);
    const Partition& partition = lb.scheme.partition();

    // Mirror the frame into a fresh document, preserving child order.
    auto mirror = std::make_unique<xml::Document>();
    std::vector<xml::Node*> mirror_of(partition.areas.size(), nullptr);
    xml::Node* mroot = mirror->CreateElement("f");
    Status st = mirror->AppendChild(mirror->document_node(), mroot);
    if (!st.ok()) return st;
    mirror_of[0] = mroot;
    std::vector<uint32_t> stack{0};
    while (!stack.empty()) {
      uint32_t a = stack.back();
      stack.pop_back();
      for (uint32_t child : partition.areas[a].child_areas) {
        xml::Node* m = mirror->CreateElement("f");
        st = mirror->AppendChild(mirror_of[a], m);
        if (!st.ok()) return st;
        mirror_of[child] = m;
        stack.push_back(child);
      }
    }
    for (uint32_t a = 0; a < partition.areas.size(); ++a) {
      lb.to_mirror[partition.areas[a].root->serial()] = mirror_of[a];
    }
    cur_root = mroot;
    level_roots.push_back(mroot);
    mirrors_.push_back(std::move(mirror));
    built.push_back(std::move(lb));
  }

  // Top level: plain UID over tree_levels.
  {
    scheme::UidScheme top;
    top.Build(cur_root);
    top_kappa_ = top.k();
    xml::PreorderTraverse(cur_root, [&](xml::Node* n, int) {
      top_uid_[n->serial()] = top.label(n);
      return true;
    });
  }

  // Compute multilevel ids top-down: ids of tree_{j+1} nodes first, then
  // extend to tree_j.
  // per_level_ids[i] maps serial in tree at level (i+1) -> RuidMId of levels
  // (i+1)..m.
  std::vector<std::unordered_map<uint32_t, RuidMId>> per_level(
      static_cast<size_t>(levels_));
  {
    // Level m: θ only.
    auto& top_ids = per_level[static_cast<size_t>(levels_ - 1)];
    for (const auto& [serial, theta] : top_uid_) {
      RuidMId id;
      id.theta = theta;
      top_ids[serial] = std::move(id);
    }
  }
  for (int j = levels_ - 1; j >= 1; --j) {
    const LevelBuild& lb = built[static_cast<size_t>(j - 1)];
    const Partition& partition = lb.scheme.partition();
    auto& upper_ids = per_level[static_cast<size_t>(j)];
    auto& my_ids = per_level[static_cast<size_t>(j - 1)];
    xml::Node* jroot = level_roots[static_cast<size_t>(j - 1)];
    xml::PreorderTraverse(jroot, [&](xml::Node* n, int) {
      const Ruid2Id& two = lb.scheme.label(n);
      // Reference area: the node's own area when it is an area root,
      // otherwise the area containing it; both are frame nodes one level up.
      xml::Node* area_root =
          two.is_area_root
              ? n
              : partition
                    .areas[partition.member_area.at(n->serial())]
                    .root;
      xml::Node* mirror = lb.to_mirror.at(area_root->serial());
      RuidMId id = upper_ids.at(mirror->serial());
      id.path.emplace_back(two.local, two.is_area_root);
      my_ids[n->serial()] = std::move(id);
      return true;
    });
  }

  // K tables: K_j keyed by the prefix (the id of the area root one level
  // up), carrying the area root's local index in the upper area and the
  // area's local fan-out.
  ktables_.resize(static_cast<size_t>(std::max(0, levels_ - 1)));
  for (int j = 1; j < levels_; ++j) {
    const LevelBuild& lb = built[static_cast<size_t>(j - 1)];
    const Partition& partition = lb.scheme.partition();
    const auto& upper_ids = per_level[static_cast<size_t>(j)];
    KMap& kmap = ktables_[static_cast<size_t>(j - 1)];
    for (uint32_t a = 0; a < partition.areas.size(); ++a) {
      xml::Node* area_root = partition.areas[a].root;
      xml::Node* mirror = lb.to_mirror.at(area_root->serial());
      const Ruid2Id& root_two = lb.scheme.label(area_root);
      kmap[upper_ids.at(mirror->serial())] =
          KEntry{root_two.local, partition.areas[a].local_fanout};
    }
  }

  // Publish the ids of the source tree.
  const auto& source_ids = per_level[0];
  xml::PreorderTraverse(root, [&](xml::Node* n, int) {
    const RuidMId& id = source_ids.at(n->serial());
    ids_[n->serial()] = id;
    by_id_[id] = n;
    return true;
  });
  // Two distinct nodes mapping to one identifier would collapse in by_id_.
  RUIDX_DCHECK(ids_.size() == by_id_.size(),
               "duplicate multilevel identifier after build");
  return Status::OK();
}

xml::Node* RuidMScheme::NodeById(const RuidMId& id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

Result<RuidMId> RuidMScheme::ParentAtLevel(const RuidMId& id,
                                           size_t level_index) const {
  // level_index counts from the innermost remaining level: an id with an
  // empty path lives at the top level.
  if (id.path.empty()) {
    if (id.theta <= BigUint(1)) {
      return Status::NotFound("the top-level root has no parent");
    }
    RuidMId out;
    out.theta = UidParent(id.theta, top_kappa_);
    return out;
  }
  const auto& [alpha, beta] = id.path.back();
  RuidMId prefix = Prefix(id, 1);
  if (beta) {
    if (alpha == BigUint(1)) {
      return Status::NotFound("the main root has no parent");
    }
    RUIDX_ASSIGN_OR_RETURN(prefix, ParentAtLevel(prefix, level_index + 1));
  }
  // The innermost pair of `id` sits at level j = levels_ - |path|, whose K
  // table lives at index j - 1.
  const KMap& kmap =
      ktables_[static_cast<size_t>(levels_) - id.path.size() - 1];
  auto it = kmap.find(prefix);
  if (it == kmap.end()) {
    return Status::NotFound("no K entry for area " + prefix.ToString());
  }
  if (alpha < BigUint(2)) {
    return Status::InvalidArgument("local index has no parent in its area");
  }
  BigUint l = UidParent(alpha, it->second.fanout);
  RuidMId out = std::move(prefix);
  if (l == BigUint(1)) {
    out.path.emplace_back(it->second.root_local, true);
  } else {
    out.path.emplace_back(std::move(l), false);
  }
  return out;
}

Result<RuidMId> RuidMScheme::Parent(const RuidMId& id) const {
  return ParentAtLevel(id, 0);
}

bool RuidMScheme::IsAncestorId(const RuidMId& a, const RuidMId& d) const {
  if (a == d) return false;
  RuidMId cur = d;
  for (;;) {
    auto parent = Parent(cur);
    if (!parent.ok()) return false;
    cur = parent.MoveValueUnsafe();
    if (cur == a) return true;
  }
}

int RuidMScheme::CompareIds(const RuidMId& a, const RuidMId& b) const {
  if (a == b) return 0;
  auto chain_of = [&](const RuidMId& id) {
    std::vector<RuidMId> chain;
    RuidMId cur = id;
    chain.push_back(cur);
    for (;;) {
      auto parent = Parent(cur);
      if (!parent.ok()) break;
      cur = parent.MoveValueUnsafe();
      chain.push_back(cur);
    }
    std::reverse(chain.begin(), chain.end());
    return chain;
  };
  std::vector<RuidMId> ca = chain_of(a);
  std::vector<RuidMId> cb = chain_of(b);
  size_t i = 0;
  while (i < ca.size() && i < cb.size() && ca[i] == cb[i]) ++i;
  if (i == ca.size()) return -1;
  if (i == cb.size()) return 1;
  // The divergent entries are siblings enumerated in the same area; their
  // level-1 local indices decide the order. A sibling at the top level has
  // an empty path and is ordered by θ.
  const RuidMId& xa = ca[i];
  const RuidMId& xb = cb[i];
  if (xa.path.empty() || xb.path.empty()) {
    return xa.theta < xb.theta ? -1 : 1;
  }
  return xa.path.back().first < xb.path.back().first ? -1 : 1;
}

uint64_t RuidMScheme::MaxComponentBits() const {
  uint64_t bits = 0;
  for (const auto& [serial, id] : ids_) {
    bits = std::max(bits, id.MaxComponentBits());
  }
  return bits;
}

uint64_t RuidMScheme::TotalIdBits() const {
  uint64_t total = 0;
  for (const auto& [serial, id] : ids_) {
    total += static_cast<uint64_t>(id.theta.BitWidth());
    for (const auto& [alpha, beta] : id.path) {
      total += static_cast<uint64_t>(alpha.BitWidth()) + 1;
    }
  }
  return total;
}

void RuidMLabeling::Build(xml::Node* root) {
  scheme_ = RuidMScheme(levels_, options_);
  Status st = scheme_.Build(root);
  assert(st.ok() && "RuidMScheme::Build failed");
  (void)st;
}

bool RuidMLabeling::IsParent(const xml::Node* p, const xml::Node* c) const {
  auto parent = scheme_.Parent(scheme_.IdOf(c));
  return parent.ok() && *parent == scheme_.IdOf(p);
}

bool RuidMLabeling::IsAncestor(const xml::Node* a, const xml::Node* d) const {
  return scheme_.IsAncestorId(scheme_.IdOf(a), scheme_.IdOf(d));
}

int RuidMLabeling::CompareOrder(const xml::Node* a, const xml::Node* b) const {
  return scheme_.CompareIds(scheme_.IdOf(a), scheme_.IdOf(b));
}

uint64_t RuidMLabeling::LabelBits(const xml::Node* n) const {
  const RuidMId& id = scheme_.IdOf(n);
  uint64_t bits = static_cast<uint64_t>(id.theta.BitWidth());
  for (const auto& [alpha, beta] : id.path) {
    bits += static_cast<uint64_t>(alpha.BitWidth()) + 1;
  }
  return bits;
}

uint64_t RuidMLabeling::TotalLabelBits() const { return scheme_.TotalIdBits(); }

std::string RuidMLabeling::LabelString(const xml::Node* n) const {
  return scheme_.IdOf(n).ToString();
}

uint64_t RuidMLabeling::RelabelAndCount(xml::Node* root) {
  // The multilevel construction is rebuilt wholesale; count survivors whose
  // identifier changed.
  std::vector<std::pair<xml::Node*, RuidMId>> old_ids;
  xml::PreorderTraverse(root, [&](xml::Node* n, int) {
    if (scheme_.HasId(n)) old_ids.emplace_back(n, scheme_.IdOf(n));
    return true;
  });
  Build(root);
  // Every surviving node must carry a fresh identifier after the rebuild.
  RUIDX_DCHECK(std::all_of(old_ids.begin(), old_ids.end(),
                           [&](const auto& p) {
                             return scheme_.HasId(p.first);
                           }),
               "node lost its identifier across a relabel");
  uint64_t changed = 0;
  for (const auto& [node, id] : old_ids) {
    if (!scheme_.IdMatches(node, id)) ++changed;
  }
  return changed;
}

uint64_t RuidMScheme::GlobalStateBytes() const {
  uint64_t bytes = 0;
  for (const KMap& kmap : ktables_) {
    for (const auto& [key, entry] : kmap) {
      bytes += static_cast<uint64_t>(key.theta.WordCount()) * 8;
      bytes += key.path.size() * 9;
      bytes += static_cast<uint64_t>(entry.root_local.WordCount()) * 8 + 8;
    }
  }
  return bytes;
}

}  // namespace core
}  // namespace ruidx
