#include "core/ruid2.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "scheme/uid.h"
#include "util/dcheck.h"
#include "util/thread_pool.h"

namespace ruidx {
namespace core {

using scheme::UidChild;
using scheme::UidCompareOrder;
using scheme::UidIsAncestor;
using scheme::UidParent;

std::string Ruid2Id::ToString() const {
  std::ostringstream os;
  os << "(" << global.ToDecimalString() << ", " << local.ToDecimalString()
     << ", " << (is_area_root ? "true" : "false") << ")";
  return os.str();
}

Ruid2Id Ruid2RootId() { return Ruid2Id{BigUint(1), BigUint(1), true}; }

uint32_t Ruid2Scheme::MemberAreaOf(const xml::Node* n) const {
  return partition_.member_area.at(n->serial());
}

uint32_t Ruid2Scheme::ExpandAreaOf(const xml::Node* n) const {
  auto it = partition_.rooted_area.find(n->serial());
  if (it != partition_.rooted_area.end()) return it->second;
  return partition_.member_area.at(n->serial());
}

void Ruid2Scheme::SetLabel(xml::Node* n, Ruid2Id id, uint64_t* changed) {
  auto it = labels_.find(n->serial());
  if (it != labels_.end()) {
    if (it->second == id) return;
    if (changed != nullptr) ++*changed;
    auto bit = by_id_.find(it->second);
    if (bit != by_id_.end() && bit->second == n) by_id_.erase(bit);
    it->second = id;
  } else {
    labels_.emplace(n->serial(), id);
  }
  by_id_[std::move(id)] = n;
}

void Ruid2Scheme::DropLabel(xml::Node* n) {
  auto it = labels_.find(n->serial());
  if (it == labels_.end()) return;
  auto bit = by_id_.find(it->second);
  if (bit != by_id_.end() && bit->second == n) by_id_.erase(bit);
  labels_.erase(it);
}

Ruid2Scheme::AreaEnumeration Ruid2Scheme::EnumerateArea(
    uint32_t area_idx) const {
  const Partition::Area& area = partition_.areas[area_idx];
  assert(area.root != nullptr && "enumerating a dropped area");
  const BigUint& area_global = area_globals_[area_idx];
  AreaEnumeration e;
  e.area_idx = area_idx;

  // Recompute the local maximal fan-out over expanding members. The paper
  // only ever *enlarges* k_i (shrinking would relabel for no benefit).
  uint64_t max_fanout = 1;
  xml::PreorderTraverse(area.root, [&](xml::Node* n, int depth) {
    if (depth > 0 && partition_.IsAreaRoot(n)) return false;  // leaf here
    max_fanout = std::max<uint64_t>(max_fanout, n->fanout());
    return true;
  });
  e.fanout = area.local_fanout;
  if (max_fanout > e.fanout) {
    e.fanout = max_fanout;
    e.fanout_grew = true;
  }
  uint64_t k = e.fanout;

  // Local enumeration (Fig. 3, lines 4-13): the area root is index 1; the
  // j-th child of an expanding member with index L gets UidChild(L, k, j).
  uint64_t members = 1;
  struct Frame {
    xml::Node* node;
    BigUint local;
  };
  std::vector<Frame> stack{{area.root, BigUint(1)}};
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    const auto& ch = f.node->children();
    for (size_t j = 0; j < ch.size(); ++j) {
      xml::Node* c = ch[j];
      ++members;
      BigUint local = UidChild(f.local, k, j);
      auto rit = partition_.rooted_area.find(c->serial());
      if (rit != partition_.rooted_area.end()) {
        // c roots a child area: identifier (g_child, local-in-this-area,
        // true); its K row's root_local is patched during the apply step.
        e.child_root_locals.emplace_back(rit->second, local);
        e.labels.emplace_back(
            c, Ruid2Id{area_globals_[rit->second], std::move(local), true});
        // Do not descend: c's children belong to the child area.
      } else {
        e.labels.emplace_back(c, Ruid2Id{area_global, local, false});
        stack.push_back({c, std::move(local)});
      }
    }
  }
  e.member_count = members;
  return e;
}

uint64_t Ruid2Scheme::ApplyEnumeration(const AreaEnumeration& e,
                                       bool* fanout_grew) {
  Partition::Area& area = partition_.areas[e.area_idx];
  if (e.fanout_grew) {
    area.local_fanout = e.fanout;
    if (fanout_grew != nullptr) *fanout_grew = true;
  }
  ktable_.SetFanout(area_globals_[e.area_idx], e.fanout);
  for (const auto& [child_area, root_local] : e.child_root_locals) {
    ktable_.SetRootLocal(area_globals_[child_area], root_local);
  }
  uint64_t changed = 0;
  for (const auto& [node, id] : e.labels) {
    SetLabel(node, id, &changed);
  }
  area.member_count = e.member_count;
  // Every published label must still be uniquely indexed, and the K row the
  // enumeration wrote must reflect the fan-out it enumerated with.
  RUIDX_DCHECK(labels_.size() == by_id_.size(),
               "label/index bijection broken by ApplyEnumeration");
  RUIDX_DCHECK(ktable_.Find(area_globals_[e.area_idx]) != nullptr &&
                   ktable_.Find(area_globals_[e.area_idx])->fanout == e.fanout,
               "K fan-out stale after ApplyEnumeration");
  return changed;
}

uint64_t Ruid2Scheme::RenumberArea(uint32_t area_idx, bool* fanout_grew) {
  return ApplyEnumeration(EnumerateArea(area_idx), fanout_grew);
}

void Ruid2Scheme::Build(xml::Node* root) { Build(root, nullptr); }

void Ruid2Scheme::Build(xml::Node* root, util::ThreadPool* pool) {
  auto partition = PartitionTree(root, options_);
  assert(partition.ok() && "invalid partition options");
  partition_ = partition.MoveValueUnsafe();
  labels_.clear();
  by_id_.clear();
  ktable_.Clear();
  area_by_global_.clear();
  area_globals_.assign(partition_.areas.size(), BigUint(0));
  ancestor_cache_.Clear();

  kappa_ = std::max<uint64_t>(1, partition_.FrameFanout());

  // Global enumeration of the frame with a κ-ary UID (Fig. 3, lines 1-3).
  struct Frame {
    uint32_t area;
    BigUint global;
  };
  std::vector<Frame> stack{{0, BigUint(1)}};
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    const auto& child_areas = partition_.areas[f.area].child_areas;
    for (size_t j = 0; j < child_areas.size(); ++j) {
      stack.push_back({child_areas[j], UidChild(f.global, kappa_, j)});
    }
    area_by_global_[f.global] = f.area;
    area_globals_[f.area] = std::move(f.global);
  }

  // Seed table K; root_local values are patched during local enumeration.
  for (uint32_t i = 0; i < partition_.areas.size(); ++i) {
    ktable_.Upsert(KRow{area_globals_[i], BigUint(i == 0 ? 1 : 0),
                        partition_.areas[i].local_fanout});
  }

  // The main root is (1, 1, true) by Def. 3.
  SetLabel(root, Ruid2RootId(), nullptr);

  // Local enumeration of every area. Areas share no members besides their
  // roots (enumerated in the *upper* area), so EnumerateArea calls are
  // independent pure computations — the BigUint-heavy half of the build —
  // and run concurrently. The apply step merges serially in area order,
  // which makes the result identical for every thread count.
  // lint: disjoint-writes — worker i writes only enumerations[i].
  std::vector<AreaEnumeration> enumerations(partition_.areas.size());
  util::ThreadPool::ParallelFor(
      pool, partition_.areas.size(), [&](size_t i) {
        enumerations[i] = EnumerateArea(static_cast<uint32_t>(i));
      });
  for (const AreaEnumeration& e : enumerations) {
    ApplyEnumeration(e, nullptr);
  }
}

Result<Ruid2Id> RuidParent(const Ruid2Id& id, uint64_t kappa, const KTable& k) {
  if (PackedFastPathEnabled()) {
    PackedRuid2Id packed;
    if (PackRuid2Id(id, &packed)) {
      PackedRuid2Id parent;
      switch (PackedRuidParent(packed, kappa, k, &parent)) {
        case PackedParentStatus::kOk:
          return UnpackRuid2Id(parent);
        case PackedParentStatus::kMainRoot:
          return Status::NotFound("the main root has no parent");
        case PackedParentStatus::kNoParentInArea:
          return Status::InvalidArgument("local index " +
                                         std::to_string(packed.local()) +
                                         " has no parent in its area");
        case PackedParentStatus::kFallback:
          break;  // outside the packed range: take the BigUint path below
      }
    }
  }
  if (id == Ruid2RootId()) {
    return Status::NotFound("the main root has no parent");
  }
  // Fig. 6, lines 1-5: pick the area that hosts the parent.
  BigUint g = id.is_area_root ? UidParent(id.global, kappa) : id.global;
  const KRow* row = k.Find(g);
  if (row == nullptr) {
    return Status::NotFound("no K row for global index " + g.ToDecimalString());
  }
  if (id.local < BigUint(2)) {
    return Status::InvalidArgument("local index " + id.local.ToDecimalString() +
                                   " has no parent in its area");
  }
  // Fig. 6, lines 6-13.
  BigUint l = UidParent(id.local, row->fanout);
  if (l == BigUint(1)) {
    return Ruid2Id{std::move(g), row->root_local, true};
  }
  return Ruid2Id{std::move(g), std::move(l), false};
}

Result<Ruid2Id> Ruid2Scheme::Parent(const Ruid2Id& id) const {
  return RuidParent(id, kappa_, ktable_);
}

std::vector<Ruid2Id> Ruid2Scheme::Ancestors(const Ruid2Id& id) const {
  if (PackedFastPathEnabled()) {
    // Hybrid: packed machine-word climb inside the node's own area, then a
    // straight copy of the memoized BigUint frame tail. Unpacking a whole
    // cached chain element by element used to cost more than the BigUint
    // copy it replaced.
    PackedRuid2Id packed;
    std::vector<Ruid2Id> out;
    if (PackRuid2Id(id, &packed) &&
        ancestor_cache_.AncestorsHybrid(packed, kappa_, ktable_, &out)) {
      return out;
    }
  }
  return ancestor_cache_.Ancestors(id, kappa_, ktable_);
}

bool Ruid2Scheme::AncestorsPacked(const Ruid2Id& id,
                                  std::vector<PackedRuid2Id>* out) const {
  if (!PackedFastPathEnabled()) return false;
  PackedRuid2Id packed;
  if (!PackRuid2Id(id, &packed)) return false;
  out->clear();
  return ancestor_cache_.AncestorsPacked(packed, kappa_, ktable_, out);
}

bool Ruid2Scheme::IsAncestorId(const Ruid2Id& a, const Ruid2Id& d) const {
  if (a == d) return false;
  if (PackedFastPathEnabled()) {
    PackedRuid2Id pd;
    std::vector<PackedRuid2Id> chain;
    if (PackRuid2Id(d, &pd) &&
        ancestor_cache_.AncestorsPacked(pd, kappa_, ktable_, &chain)) {
      PackedRuid2Id pa;
      // d's complete chain is packed, so an unpackable a cannot be on it.
      if (!PackRuid2Id(a, &pa)) return false;
      for (const PackedRuid2Id& anc : chain) {
        if (anc == pa) return true;
      }
      return false;
    }
  }
  // a is a proper ancestor of d iff it appears on d's ancestor chain; the
  // frame part of the chain comes from the per-area cache.
  for (const Ruid2Id& anc : Ancestors(d)) {
    if (anc == a) return true;
  }
  return false;
}

uint64_t Ruid2Scheme::DepthOf(const Ruid2Id& id) const {
  return Ancestors(id).size();
}

int Ruid2Scheme::CompareIds(const Ruid2Id& a, const Ruid2Id& b) const {
  if (a == b) return 0;
  if (PackedFastPathEnabled()) {
    PackedRuid2Id pa, pb;
    if (PackRuid2Id(a, &pa) && PackRuid2Id(b, &pb)) {
      // Lemma 3 shortcut on machine words.
      if (pa.global != pb.global &&
          !PackedUidIsAncestor(pa.global, pb.global, kappa_) &&
          !PackedUidIsAncestor(pb.global, pa.global, kappa_)) {
        return PackedUidCompareOrder(pa.global, pb.global, kappa_);
      }
      // Fig. 10 fallback on packed chains (root first, the node last).
      std::vector<PackedRuid2Id> ca, cb;
      if (ancestor_cache_.AncestorsPacked(pa, kappa_, ktable_, &ca) &&
          ancestor_cache_.AncestorsPacked(pb, kappa_, ktable_, &cb)) {
        std::reverse(ca.begin(), ca.end());
        ca.push_back(pa);
        std::reverse(cb.begin(), cb.end());
        cb.push_back(pb);
        size_t i = 0;
        while (i < ca.size() && i < cb.size() && ca[i] == cb[i]) ++i;
        if (i == ca.size()) return -1;  // a is an ancestor of b
        if (i == cb.size()) return 1;
        return ca[i].local() < cb[i].local() ? -1 : 1;
      }
    }
  }
  // Lemma 3: when the two areas are neither equal nor frame-ancestor
  // related, the frame order decides the document order outright.
  const BigUint& ta = a.global;
  const BigUint& tb = b.global;
  if (ta != tb && !UidIsAncestor(ta, tb, kappa_) &&
      !UidIsAncestor(tb, ta, kappa_)) {
    return UidCompareOrder(ta, tb, kappa_);
  }
  // Fig. 10 fallback: compare the children of the lowest common ancestor.
  // Build root-to-node identifier chains and find the divergence point; the
  // two divergent identifiers are siblings enumerated in the same area, so
  // their local indices are numerically ordered left to right.
  auto chain_of = [&](const Ruid2Id& id) {
    std::vector<Ruid2Id> chain = Ancestors(id);
    std::reverse(chain.begin(), chain.end());
    chain.push_back(id);
    return chain;
  };
  std::vector<Ruid2Id> ca = chain_of(a);
  std::vector<Ruid2Id> cb = chain_of(b);
  size_t i = 0;
  while (i < ca.size() && i < cb.size() && ca[i] == cb[i]) ++i;
  if (i == ca.size()) return -1;  // a is an ancestor of b
  if (i == cb.size()) return 1;
  return ca[i].local < cb[i].local ? -1 : 1;
}

xml::Node* Ruid2Scheme::NodeById(const Ruid2Id& id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

bool Ruid2Scheme::IsParent(const xml::Node* p, const xml::Node* c) const {
  auto parent = Parent(label(c));
  return parent.ok() && *parent == label(p);
}

bool Ruid2Scheme::IsAncestor(const xml::Node* a, const xml::Node* d) const {
  return IsAncestorId(label(a), label(d));
}

int Ruid2Scheme::CompareOrder(const xml::Node* a, const xml::Node* b) const {
  return CompareIds(label(a), label(b));
}

uint64_t Ruid2Scheme::LabelBits(const xml::Node* n) const {
  const Ruid2Id& id = label(n);
  return static_cast<uint64_t>(id.global.BitWidth()) +
         static_cast<uint64_t>(id.local.BitWidth()) + 1;
}

uint64_t Ruid2Scheme::TotalLabelBits() const {
  uint64_t total = 0;
  for (const auto& [serial, id] : labels_) {
    total += static_cast<uint64_t>(id.global.BitWidth()) +
             static_cast<uint64_t>(id.local.BitWidth()) + 1;
  }
  return total;
}

std::string Ruid2Scheme::LabelString(const xml::Node* n) const {
  return label(n).ToString();
}

Result<UpdateReport> Ruid2Scheme::InsertAndRelabel(xml::Document* doc,
                                                   xml::Node* parent,
                                                   size_t pos,
                                                   xml::Node* child) {
  if (doc == nullptr || parent == nullptr || child == nullptr) {
    return Status::InvalidArgument("null argument");
  }
  if (!labels_.contains(parent->serial())) {
    return Status::InvalidArgument("parent is not labeled by this scheme");
  }
  RUIDX_RETURN_NOT_OK(doc->InsertChild(parent, pos, child));
  // The new subtree joins the area in which parent's children are
  // enumerated; no new areas are created by an insertion (Sec. 3.2).
  uint32_t area = ExpandAreaOf(parent);
  xml::PreorderTraverse(child, [&](xml::Node* n, int) {
    partition_.member_area[n->serial()] = area;
    return true;
  });
  UpdateReport report;
  report.areas_touched = 1;
  report.relabeled = RenumberArea(area, &report.local_fanout_grew);
  ancestor_cache_.OnUpdate(report);
  // The inserted subtree must have been labeled by the re-enumeration, and
  // rparent must invert the new edge immediately.
  RUIDX_DCHECK(labels_.contains(child->serial()),
               "inserted node left unlabeled");
  RUIDX_DCHECK(
      [&] {
        auto parent_id = Parent(labels_.at(child->serial()));
        return parent_id.ok() && *parent_id == labels_.at(parent->serial());
      }(),
      "rparent does not invert the inserted edge");
  return report;
}

Result<UpdateReport> Ruid2Scheme::RemoveAndRelabel(xml::Document* doc,
                                                   xml::Node* victim) {
  if (doc == nullptr || victim == nullptr) {
    return Status::InvalidArgument("null argument");
  }
  if (!labels_.contains(victim->serial())) {
    return Status::InvalidArgument("victim is not labeled by this scheme");
  }
  if (victim->parent() == nullptr || victim->parent()->is_document()) {
    return Status::InvalidArgument("cannot remove the root");
  }
  uint32_t area = MemberAreaOf(victim);
  UpdateReport report;

  // Node deletion is cascading: every area rooted inside the subtree dies
  // with it, along with its K row. Other areas keep their global indices —
  // the freed frame slots simply become virtual.
  xml::PreorderTraverse(victim, [&](xml::Node* n, int) {
    auto rit = partition_.rooted_area.find(n->serial());
    if (rit != partition_.rooted_area.end()) {
      uint32_t dead = rit->second;
      ++report.areas_dropped;
      const BigUint& dead_global = area_globals_[dead];
      ktable_.Erase(dead_global);
      area_by_global_.erase(dead_global);
      uint32_t up = partition_.areas[dead].parent_area;
      if (up != Partition::kNoArea && partition_.areas[up].root != nullptr) {
        auto& siblings = partition_.areas[up].child_areas;
        siblings.erase(std::remove(siblings.begin(), siblings.end(), dead),
                       siblings.end());
      }
      partition_.areas[dead].root = nullptr;
      partition_.rooted_area.erase(rit);
    }
    partition_.member_area.erase(n->serial());
    DropLabel(n);
    return true;
  });

  RUIDX_RETURN_NOT_OK(doc->RemoveSubtree(victim));
  report.areas_touched = 1;
  report.relabeled = RenumberArea(area, &report.local_fanout_grew);
  ancestor_cache_.OnUpdate(report);
  // Cascading deletion must leave no label behind and keep the index a
  // bijection; the victim's subtree was dropped above.
  RUIDX_DCHECK(!labels_.contains(victim->serial()),
               "removed node still labeled");
  RUIDX_DCHECK(labels_.size() == by_id_.size(),
               "label/index bijection broken by RemoveAndRelabel");
  return report;
}

Status Ruid2Scheme::Validate(xml::Node* root) const {
  if (root == nullptr) return Status::InvalidArgument("null root");
  // 1. Labels: complete, bijective with the index, rparent inverts edges.
  uint64_t node_count = 0;
  Status status = Status::OK();
  xml::PreorderTraverse(root, [&](xml::Node* n, int) {
    if (!status.ok()) return false;
    ++node_count;
    auto it = labels_.find(n->serial());
    if (it == labels_.end()) {
      status = Status::Corruption("unlabeled node <" + n->name() + ">");
      return false;
    }
    const Ruid2Id& id = it->second;
    if (NodeById(id) != n) {
      status = Status::Corruption("index does not map " + id.ToString() +
                                  " back to its node");
      return false;
    }
    if (n == root) {
      if (!(id == Ruid2RootId())) {
        status = Status::Corruption("root is " + id.ToString() +
                                    ", expected (1, 1, true)");
      }
      return true;
    }
    auto parent = Parent(id);
    if (!parent.ok()) {
      status = Status::Corruption("rparent failed for " + id.ToString() +
                                  ": " + parent.status().ToString());
      return false;
    }
    auto pit = labels_.find(n->parent()->serial());
    if (pit == labels_.end() || !(*parent == pit->second)) {
      status = Status::Corruption("rparent(" + id.ToString() +
                                  ") does not match the DOM parent");
      return false;
    }
    return true;
  });
  RUIDX_RETURN_NOT_OK(status);
  if (node_count != labels_.size()) {
    return Status::Corruption("label table holds " +
                              std::to_string(labels_.size()) + " entries for " +
                              std::to_string(node_count) + " nodes");
  }
  if (labels_.size() != by_id_.size()) {
    return Status::Corruption("id index size mismatch");
  }
  // 2. K table and partition agreement.
  uint64_t live_areas = 0;
  for (uint32_t i = 0; i < partition_.areas.size(); ++i) {
    const Partition::Area& area = partition_.areas[i];
    if (area.root == nullptr) continue;  // dropped by a deletion
    ++live_areas;
    const KRow* row = ktable_.Find(area_globals_[i]);
    if (row == nullptr) {
      return Status::Corruption("missing K row for area " +
                                area_globals_[i].ToDecimalString());
    }
    if (row->fanout != area.local_fanout) {
      return Status::Corruption("K fanout disagrees with partition for area " +
                                area_globals_[i].ToDecimalString());
    }
    const Ruid2Id& root_id = labels_.at(area.root->serial());
    if (row->root_local != root_id.local) {
      return Status::Corruption("K root_local stale for area " +
                                area_globals_[i].ToDecimalString());
    }
    // Local fan-out bounds every expanding member.
    Status area_status = Status::OK();
    xml::PreorderTraverse(area.root, [&](xml::Node* n, int depth) {
      if (depth > 0 && partition_.IsAreaRoot(n)) return false;
      if (n->fanout() > area.local_fanout) {
        area_status = Status::Corruption("member fan-out exceeds k in area " +
                                         area_globals_[i].ToDecimalString());
        return false;
      }
      return true;
    });
    RUIDX_RETURN_NOT_OK(area_status);
  }
  if (live_areas != ktable_.size()) {
    return Status::Corruption("K table has " + std::to_string(ktable_.size()) +
                              " rows for " + std::to_string(live_areas) +
                              " live areas");
  }
  if (kappa_ < partition_.FrameFanout()) {
    return Status::Corruption("kappa below the frame fan-out");
  }
  return Status::OK();
}

uint64_t Ruid2Scheme::RelabelAndCount(xml::Node* root) {
  // Detect externally applied mutations: unlabeled nodes are insertions,
  // labeled serials that vanished from the tree are deletions.
  std::unordered_set<uint32_t> in_tree;
  std::vector<uint32_t> dirty_areas;
  auto mark_dirty = [&](uint32_t area) {
    if (std::find(dirty_areas.begin(), dirty_areas.end(), area) ==
        dirty_areas.end()) {
      dirty_areas.push_back(area);
    }
  };
  xml::PreorderTraverse(root, [&](xml::Node* n, int) {
    in_tree.insert(n->serial());
    if (!labels_.contains(n->serial()) &&
        !partition_.member_area.contains(n->serial())) {
      // Preorder guarantees the parent was processed first, so its
      // membership is known by now.
      xml::Node* p = n->parent();
      uint32_t area = (p == nullptr) ? 0 : ExpandAreaOf(p);
      partition_.member_area[n->serial()] = area;
      mark_dirty(area);
    }
    return true;
  });

  // Deletions.
  UpdateReport report;
  std::vector<uint32_t> gone;
  for (const auto& [serial, id] : labels_) {
    if (!in_tree.contains(serial)) gone.push_back(serial);
  }
  for (uint32_t serial : gone) {
    auto mit = partition_.member_area.find(serial);
    if (mit != partition_.member_area.end()) {
      // The containing area must be re-enumerated if it survives.
      uint32_t area = mit->second;
      if (partition_.areas[area].root != nullptr &&
          in_tree.contains(partition_.areas[area].root->serial())) {
        mark_dirty(area);
      }
      partition_.member_area.erase(mit);
    }
    auto rit = partition_.rooted_area.find(serial);
    if (rit != partition_.rooted_area.end()) {
      uint32_t dead = rit->second;
      ++report.areas_dropped;
      const BigUint& dead_global = area_globals_[dead];
      ktable_.Erase(dead_global);
      area_by_global_.erase(dead_global);
      uint32_t up = partition_.areas[dead].parent_area;
      if (up != Partition::kNoArea && partition_.areas[up].root != nullptr) {
        auto& siblings = partition_.areas[up].child_areas;
        siblings.erase(std::remove(siblings.begin(), siblings.end(), dead),
                       siblings.end());
      }
      partition_.areas[dead].root = nullptr;
      partition_.rooted_area.erase(rit);
    }
    auto lit = labels_.find(serial);
    if (lit != labels_.end()) {
      // DropLabel needs the node pointer; erase by value instead.
      auto bit = by_id_.find(lit->second);
      if (bit != by_id_.end() && bit->second->serial() == serial) {
        by_id_.erase(bit);
      }
      labels_.erase(lit);
    }
  }

  uint64_t changed = 0;
  for (uint32_t area : dirty_areas) {
    if (partition_.areas[area].root == nullptr) continue;
    ++report.areas_touched;
    changed += RenumberArea(area, &report.local_fanout_grew);
  }
  report.relabeled = changed;
  ancestor_cache_.OnUpdate(report);
  RUIDX_DCHECK(labels_.size() == by_id_.size(),
               "label/index bijection broken by RelabelAndCount");
  return changed;
}

}  // namespace core
}  // namespace ruidx
