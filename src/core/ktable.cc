#include "core/ktable.h"

#include <algorithm>

namespace ruidx {
namespace core {

namespace {
struct GlobalLess {
  bool operator()(const KRow& row, const BigUint& g) const {
    return row.global < g;
  }
};
}  // namespace

void KTable::Upsert(KRow row) {
  auto it = std::lower_bound(rows_.begin(), rows_.end(), row.global,
                             GlobalLess());
  if (it != rows_.end() && it->global == row.global) {
    *it = std::move(row);
  } else {
    rows_.insert(it, std::move(row));
  }
}

void KTable::Erase(const BigUint& global) {
  auto it = std::lower_bound(rows_.begin(), rows_.end(), global, GlobalLess());
  if (it != rows_.end() && it->global == global) rows_.erase(it);
}

const KRow* KTable::Find(const BigUint& global) const {
  auto it = std::lower_bound(rows_.begin(), rows_.end(), global, GlobalLess());
  if (it != rows_.end() && it->global == global) return &*it;
  return nullptr;
}

KRow* KTable::FindMutable(const BigUint& global) {
  auto it = std::lower_bound(rows_.begin(), rows_.end(), global, GlobalLess());
  if (it != rows_.end() && it->global == global) return &*it;
  return nullptr;
}

uint64_t KTable::SizeInBytes() const {
  uint64_t bytes = 0;
  for (const KRow& row : rows_) {
    bytes += sizeof(KRow);
    bytes += static_cast<uint64_t>(row.global.WordCount()) * 8;
    bytes += static_cast<uint64_t>(row.root_local.WordCount()) * 8;
  }
  return bytes;
}

}  // namespace core
}  // namespace ruidx
