#include "core/ktable.h"

#include <algorithm>

#include "util/dcheck.h"

namespace ruidx {
namespace core {

namespace {

struct GlobalLess {
  bool operator()(const KRow& row, const BigUint& g) const {
    return row.global < g;
  }
};

struct PackedGlobalLess {
  bool operator()(const PackedKRow& row, uint128_t g) const {
    return row.global < g;
  }
};

constexpr uint64_t kPackedLocalLimit = uint64_t{1} << 63;

}  // namespace

void KTable::SyncPacked(const KRow& row) {
  if (!row.global.FitsUint128()) return;  // never had a mirror entry
  uint128_t g = row.global.ToUint128();
  bool packable =
      row.root_local.FitsUint64() && row.root_local.ToUint64() < kPackedLocalLimit;
  auto it = std::lower_bound(packed_rows_.begin(), packed_rows_.end(), g,
                             PackedGlobalLess());
  bool present = it != packed_rows_.end() && it->global == g;
  if (packable) {
    PackedKRow mirror{g, row.root_local.ToUint64(), row.fanout};
    if (present) {
      *it = mirror;
    } else {
      packed_rows_.insert(it, mirror);
    }
  } else if (present) {
    packed_rows_.erase(it);
  }
}

void KTable::ErasePacked(const BigUint& global) {
  if (!global.FitsUint128()) return;
  uint128_t g = global.ToUint128();
  auto it = std::lower_bound(packed_rows_.begin(), packed_rows_.end(), g,
                             PackedGlobalLess());
  if (it != packed_rows_.end() && it->global == g) packed_rows_.erase(it);
}

bool KTable::PackedMirrorAgrees(const KRow& row) const {
  if (!row.global.FitsUint128()) {
    return true;  // outside the mirror's key space by definition
  }
  const PackedKRow* mirror = FindPacked(row.global.ToUint128());
  bool packable =
      row.root_local.FitsUint64() && row.root_local.ToUint64() < kPackedLocalLimit;
  if (!packable) return mirror == nullptr;
  return mirror != nullptr && mirror->root_local == row.root_local.ToUint64() &&
         mirror->fanout == row.fanout;
}

void KTable::Upsert(KRow row) {
  auto it = std::lower_bound(rows_.begin(), rows_.end(), row.global,
                             GlobalLess());
  if (it != rows_.end() && it->global == row.global) {
    *it = std::move(row);
  } else {
    it = rows_.insert(it, std::move(row));
  }
  SyncPacked(*it);
  size_t i = static_cast<size_t>(it - rows_.begin());
  RUIDX_DCHECK(i == 0 || rows_[i - 1].global < rows_[i].global,
               "K rows out of order after Upsert");
  RUIDX_DCHECK(i + 1 >= rows_.size() || rows_[i].global < rows_[i + 1].global,
               "K rows out of order after Upsert");
  RUIDX_DCHECK(PackedMirrorAgrees(rows_[i]),
               "packed mirror stale after Upsert");
}

void KTable::Erase(const BigUint& global) {
  auto it = std::lower_bound(rows_.begin(), rows_.end(), global, GlobalLess());
  if (it != rows_.end() && it->global == global) {
    rows_.erase(it);
    ErasePacked(global);
  }
  RUIDX_DCHECK(
      !global.FitsUint128() || FindPacked(global.ToUint128()) == nullptr,
      "packed mirror row survived Erase");
}

const KRow* KTable::Find(const BigUint& global) const {
  auto it = std::lower_bound(rows_.begin(), rows_.end(), global, GlobalLess());
  if (it != rows_.end() && it->global == global) return &*it;
  return nullptr;
}

const PackedKRow* KTable::FindPacked(uint128_t global) const {
  // Branchless binary search: rparent probes this on every call with
  // effectively random globals, so a conditional-move halving loop beats
  // std::lower_bound's unpredictable branches.
  const PackedKRow* base = packed_rows_.data();
  size_t n = packed_rows_.size();
  while (n > 1) {
    size_t half = n / 2;
    base = (base[half].global <= global) ? base + half : base;
    n -= half;
  }
  if (n == 1 && base->global == global) return base;
  return nullptr;
}

bool KTable::SetFanout(const BigUint& global, uint64_t fanout) {
  auto it = std::lower_bound(rows_.begin(), rows_.end(), global, GlobalLess());
  if (it == rows_.end() || !(it->global == global)) return false;
  it->fanout = fanout;
  SyncPacked(*it);
  RUIDX_DCHECK(PackedMirrorAgrees(*it), "packed mirror stale after SetFanout");
  return true;
}

bool KTable::SetRootLocal(const BigUint& global, BigUint root_local) {
  auto it = std::lower_bound(rows_.begin(), rows_.end(), global, GlobalLess());
  if (it == rows_.end() || !(it->global == global)) return false;
  it->root_local = std::move(root_local);
  SyncPacked(*it);
  RUIDX_DCHECK(PackedMirrorAgrees(*it),
               "packed mirror stale after SetRootLocal");
  return true;
}

uint64_t KTable::SizeInBytes() const {
  uint64_t bytes = 0;
  for (const KRow& row : rows_) {
    bytes += sizeof(KRow);
    bytes += static_cast<uint64_t>(row.global.WordCount()) * 8;
    bytes += static_cast<uint64_t>(row.root_local.WordCount()) * 8;
  }
  return bytes;
}

}  // namespace core
}  // namespace ruidx
