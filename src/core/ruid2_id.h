// The 2-level ruid identifier (Def. 3) and the pure identifier arithmetic
// that needs only (κ, K) — split out of ruid2.h so that components which
// operate on identifiers alone (the ancestor-path cache, storage keys) can
// depend on the identifier without pulling in the full scheme.
#ifndef RUIDX_CORE_RUID2_ID_H_
#define RUIDX_CORE_RUID2_ID_H_

#include <cstdint>
#include <string>

#include "core/ktable.h"
#include "util/biguint.h"
#include "util/result.h"

namespace ruidx {
namespace core {

/// \brief A full 2-level ruid (Def. 3): (g_i, l_i, r_i).
struct Ruid2Id {
  BigUint global;
  BigUint local;
  bool is_area_root = false;

  bool operator==(const Ruid2Id& o) const {
    return is_area_root == o.is_area_root && global == o.global &&
           local == o.local;
  }
  bool operator!=(const Ruid2Id& o) const { return !(*this == o); }

  /// "(g, l, r)" in the notation of the paper.
  std::string ToString() const;

  size_t Hash() const {
    size_t h = global.Hash();
    h = h * 1099511628211ULL ^ local.Hash();
    return h * 2 + (is_area_root ? 1 : 0);
  }
};

struct Ruid2IdHash {
  size_t operator()(const Ruid2Id& id) const { return id.Hash(); }
};

/// The identifier of the main root, (1, 1, true).
Ruid2Id Ruid2RootId();

/// rparent() — the Fig. 6 algorithm as a pure function of (κ, K). Given the
/// identifier of a node, computes the identifier of its parent entirely in
/// main memory. Fails for the main root and for identifiers whose area has
/// no K row.
Result<Ruid2Id> RuidParent(const Ruid2Id& id, uint64_t kappa, const KTable& k);

/// \brief Outcome of an incremental structural update (Sec. 3.2 accounting).
struct UpdateReport {
  /// Previously labeled nodes whose identifier changed.
  uint64_t relabeled = 0;
  /// Areas whose local enumeration was redone.
  uint64_t areas_touched = 0;
  /// True when the insertion overflowed the area's local fan-out and k_i had
  /// to be enlarged.
  bool local_fanout_grew = false;
  /// Areas (and their K rows) dropped because a deletion removed them.
  uint64_t areas_dropped = 0;
};

}  // namespace core
}  // namespace ruidx

#endif  // RUIDX_CORE_RUID2_ID_H_
