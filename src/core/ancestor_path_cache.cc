#include "core/ancestor_path_cache.h"

#include "util/dcheck.h"

namespace ruidx {
namespace core {

std::vector<Ruid2Id> AncestorPathCache::UncachedChain(const Ruid2Id& id,
                                                      uint64_t kappa,
                                                      const KTable& k) {
  std::vector<Ruid2Id> chain;
  Ruid2Id cur = id;
  while (!(cur == Ruid2RootId())) {
    auto parent = RuidParent(cur, kappa, k);
    if (!parent.ok()) break;
    cur = parent.MoveValueUnsafe();
    chain.push_back(cur);
  }
  return chain;
}

const std::vector<Ruid2Id>* AncestorPathCache::AreaRootAncestors(
    const BigUint& global, uint64_t kappa, const KTable& k) const {
  {
    MutexLock lock(&mu_);
    auto it = chains_.find(global);
    if (it != chains_.end()) {
      ++hits_;
      return &it->second;
    }
    ++misses_;
  }
  // Compute outside the lock (the chain walk is the expensive part), then
  // publish. A racing computation of the same area yields the same chain,
  // and unordered_map entries are node-stable, so returned pointers survive
  // concurrent insertions.
  const KRow* row = k.Find(global);
  std::vector<Ruid2Id> chain;
  if (row != nullptr) {
    chain = UncachedChain(Ruid2Id{global, row->root_local, true}, kappa, k);
  }
  MutexLock lock(&mu_);
  return &chains_.try_emplace(global, std::move(chain)).first->second;
}

void AncestorPathCache::AppendAreaRootChain(const BigUint& global,
                                            uint64_t kappa, const KTable& k,
                                            std::vector<Ruid2Id>* chain) const {
  {
    MutexLock lock(&mu_);
    auto it = chains_.find(global);
    if (it != chains_.end()) {
      ++hits_;
      chain->insert(chain->end(), it->second.begin(), it->second.end());
      return;
    }
    ++misses_;
  }
  // Compute outside the lock (the chain walk is the expensive part), then
  // publish and copy in one critical section: a concurrent Clear() may
  // destroy the map entry the moment the lock drops, so the caller's copy
  // must be taken before it does.
  const KRow* row = k.Find(global);
  std::vector<Ruid2Id> tail;
  if (row != nullptr) {
    tail = UncachedChain(Ruid2Id{global, row->root_local, true}, kappa, k);
  }
  MutexLock lock(&mu_);
  const std::vector<Ruid2Id>& stored =
      chains_.try_emplace(global, std::move(tail)).first->second;
  chain->insert(chain->end(), stored.begin(), stored.end());
}

std::vector<Ruid2Id> AncestorPathCache::Ancestors(const Ruid2Id& id,
                                                  uint64_t kappa,
                                                  const KTable& k) const {
  if (!enabled_) return UncachedChain(id, kappa, k);
  std::vector<Ruid2Id> chain;
  // Climb within the node's own area until the area root (or the main root)
  // is reached; this part is node-specific and stays uncached.
  Ruid2Id cur = id;
  while (!cur.is_area_root) {
    auto parent = RuidParent(cur, kappa, k);
    if (!parent.ok()) return chain;
    cur = parent.MoveValueUnsafe();
    chain.push_back(cur);
  }
  if (cur == Ruid2RootId()) return chain;
  // From the area root upward every node of the area shares one chain,
  // copied under the cache lock (readers may race an invalidation).
  AppendAreaRootChain(cur.global, kappa, k, &chain);
  return chain;
}

const AncestorPathCache::PackedChainEntry*
AncestorPathCache::PackedAreaRootAncestors(uint128_t global, uint64_t kappa,
                                           const KTable& k) const {
  {
    MutexLock lock(&mu_);
    auto it = packed_chains_.find(global);
    if (it != packed_chains_.end()) {
      ++hits_;
      return &it->second;
    }
    ++misses_;
  }
  // Compute outside the lock, then publish; same reasoning as the BigUint
  // twin above (racing computations agree, entries are node-stable).
  PackedChainEntry entry;
  if (const PackedKRow* row = k.FindPacked(global)) {
    PackedRuid2Id root{global, row->root_local | PackedRuid2Id::kRootBit};
    entry.ok = PackedRuidAncestors(root, kappa, k, &entry.chain);
    if (!entry.ok) entry.chain.clear();
  }
  MutexLock lock(&mu_);
  return &packed_chains_.try_emplace(global, std::move(entry)).first->second;
}

bool AncestorPathCache::AppendPackedAreaRootChain(
    uint128_t global, uint64_t kappa, const KTable& k,
    std::vector<PackedRuid2Id>* out) const {
  {
    MutexLock lock(&mu_);
    auto it = packed_chains_.find(global);
    if (it != packed_chains_.end()) {
      ++hits_;
      if (!it->second.ok) return false;
      out->insert(out->end(), it->second.chain.begin(),
                  it->second.chain.end());
      return true;
    }
    ++misses_;
  }
  // Compute outside the lock, publish and copy in one critical section —
  // same lifetime reasoning as the BigUint twin above.
  PackedChainEntry entry;
  if (const PackedKRow* row = k.FindPacked(global)) {
    PackedRuid2Id root{global, row->root_local | PackedRuid2Id::kRootBit};
    entry.ok = PackedRuidAncestors(root, kappa, k, &entry.chain);
    if (!entry.ok) entry.chain.clear();
  }
  MutexLock lock(&mu_);
  const PackedChainEntry& stored =
      packed_chains_.try_emplace(global, std::move(entry)).first->second;
  if (!stored.ok) return false;
  out->insert(out->end(), stored.chain.begin(), stored.chain.end());
  return true;
}

bool AncestorPathCache::AncestorsPacked(const PackedRuid2Id& id,
                                        uint64_t kappa, const KTable& k,
                                        std::vector<PackedRuid2Id>* out) const {
  out->clear();
  if (!enabled_) return PackedRuidAncestors(id, kappa, k, out);
  // Climb within the node's own area — node-specific, uncached, and pure
  // uint64 division.
  PackedRuid2Id cur = id;
  while (!cur.is_area_root()) {
    PackedRuid2Id parent;
    switch (PackedRuidParent(cur, kappa, k, &parent)) {
      case PackedParentStatus::kOk:
        cur = parent;
        out->push_back(cur);
        continue;
      case PackedParentStatus::kFallback:
        return false;
      case PackedParentStatus::kMainRoot:
      case PackedParentStatus::kNoParentInArea:
        return true;  // chain ends here, as in the BigUint climb
    }
  }
  if (cur == PackedRuid2RootId()) return true;
  // From the area root upward every node of the area shares one chain,
  // copied under the cache lock (readers may race an invalidation).
  return AppendPackedAreaRootChain(cur.global, kappa, k, out);
}

bool AncestorPathCache::AncestorsHybrid(const PackedRuid2Id& id,
                                        uint64_t kappa, const KTable& k,
                                        std::vector<Ruid2Id>* out) const {
  out->clear();
  if (!enabled_) {
    // Cold walk entirely on packed arithmetic, unpacked on the way out —
    // still far cheaper than a BigUint division per step.
    std::vector<PackedRuid2Id> packed;
    if (!PackedRuidAncestors(id, kappa, k, &packed)) return false;
    out->reserve(packed.size());
    for (const PackedRuid2Id& anc : packed) out->push_back(UnpackRuid2Id(anc));
    return true;
  }
  // Node-specific climb on machine words; only these few steps unpack.
  PackedRuid2Id cur = id;
  while (!cur.is_area_root()) {
    PackedRuid2Id parent;
    switch (PackedRuidParent(cur, kappa, k, &parent)) {
      case PackedParentStatus::kOk:
        cur = parent;
        out->push_back(UnpackRuid2Id(cur));
        continue;
      case PackedParentStatus::kFallback:
        return false;
      case PackedParentStatus::kMainRoot:
      case PackedParentStatus::kNoParentInArea:
        return true;  // chain ends here, as in the BigUint climb
    }
  }
  if (cur == PackedRuid2RootId()) return true;
  // The shared frame tail is appended in its memoized BigUint form — a
  // straight copy, no per-element conversion.
  AppendAreaRootChain(BigUint::FromUint128(cur.global), kappa, k, out);
  return true;
}

void AncestorPathCache::OnUpdate(const UpdateReport& report) {
  if (report.relabeled > 0 || report.areas_dropped > 0 ||
      report.local_fanout_grew) {
    MutexLock lock(&mu_);
    if (!chains_.empty() || !packed_chains_.empty()) ++invalidations_;
    chains_.clear();
    packed_chains_.clear();
    // An update that relabeled, dropped areas, or grew a fan-out may have
    // changed any cached chain; nothing may survive the flush. Checked under
    // the same lock — a concurrent reader may legitimately repopulate the
    // instant it is released.
    RUIDX_DCHECK(chains_.empty() && packed_chains_.empty(),
                 "cache entries survived invalidation");
  }
}

void AncestorPathCache::Clear() {
  MutexLock lock(&mu_);
  if (!chains_.empty() || !packed_chains_.empty()) ++invalidations_;
  chains_.clear();
  packed_chains_.clear();
}

void AncestorPathCache::set_enabled(bool enabled) {
  enabled_ = enabled;
  if (!enabled) Clear();
}

uint64_t AncestorPathCache::hits() const {
  MutexLock lock(&mu_);
  return hits_;
}

uint64_t AncestorPathCache::misses() const {
  MutexLock lock(&mu_);
  return misses_;
}

uint64_t AncestorPathCache::invalidations() const {
  MutexLock lock(&mu_);
  return invalidations_;
}

size_t AncestorPathCache::entry_count() const {
  MutexLock lock(&mu_);
  return chains_.size() + packed_chains_.size();
}

}  // namespace core
}  // namespace ruidx
