#include "core/packed_ruid2_id.h"

#include <algorithm>
#include <atomic>

namespace ruidx {
namespace core {

namespace {
std::atomic<bool> g_packed_fast_path{true};
}  // namespace

bool PackedFastPathEnabled() {
  return g_packed_fast_path.load(std::memory_order_relaxed);
}

void SetPackedFastPathEnabled(bool enabled) {
  g_packed_fast_path.store(enabled, std::memory_order_relaxed);
}

bool PackedRuidAncestors(const PackedRuid2Id& id, uint64_t kappa,
                         const KTable& k, std::vector<PackedRuid2Id>* out) {
  PackedRuid2Id cur = id;
  for (;;) {
    PackedRuid2Id parent;
    switch (PackedRuidParent(cur, kappa, k, &parent)) {
      case PackedParentStatus::kOk:
        cur = parent;
        out->push_back(cur);
        break;
      case PackedParentStatus::kMainRoot:
        return true;  // reached the top: chain complete
      case PackedParentStatus::kNoParentInArea:
        return true;  // chain ends here, matching the BigUint loop's break
      case PackedParentStatus::kFallback:
        return false;
    }
  }
}

namespace {

/// Root-first ancestor chain of `id` (the node itself included) in the
/// complete k-ary enumeration.
std::vector<uint128_t> UidChainOf(uint128_t id, uint64_t k) {
  std::vector<uint128_t> chain;
  uint128_t cur = id;
  chain.push_back(cur);
  while (cur > 1) {
    cur = PackedUidParent(cur, k);
    chain.push_back(cur);
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

}  // namespace

int PackedUidCompareOrder(uint128_t a, uint128_t b, uint64_t k) {
  if (a == b) return 0;
  std::vector<uint128_t> ca = UidChainOf(a, k);
  std::vector<uint128_t> cb = UidChainOf(b, k);
  size_t i = 0;
  while (i < ca.size() && i < cb.size() && ca[i] == cb[i]) ++i;
  if (i == ca.size()) return -1;  // a is an ancestor of b: a comes first
  if (i == cb.size()) return 1;   // b is an ancestor of a
  return ca[i] < cb[i] ? -1 : 1;
}

}  // namespace core
}  // namespace ruidx
