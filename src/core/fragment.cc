#include "core/fragment.h"

#include <algorithm>
#include <unordered_set>

namespace ruidx {
namespace core {

namespace {

/// Shared skeleton: `items` must carry (id, build-node callback).
template <typename Item, typename MakeNode>
Result<std::unique_ptr<xml::Document>> Reconstruct(
    const Ruid2Scheme& scheme, std::vector<Item>* items,
    const MakeNode& make_node) {
  auto doc = std::make_unique<xml::Document>();
  xml::Node* fragment_root = doc->CreateElement("fragment");
  RUIDX_RETURN_NOT_OK(doc->AppendChild(doc->document_node(), fragment_root));

  // Document order by identifier comparison (Lemma 3 / Fig. 10): in this
  // order, each node's closest selected ancestor is already on the path
  // stack when the node is visited.
  std::sort(items->begin(), items->end(), [&](const Item& a, const Item& b) {
    return scheme.CompareIds(a.id, b.id) < 0;
  });
  // Drop duplicate identifiers (query results may repeat nodes).
  items->erase(std::unique(items->begin(), items->end(),
                           [](const Item& a, const Item& b) {
                             return a.id == b.id;
                           }),
               items->end());

  struct Open {
    Ruid2Id id;
    xml::Node* built;
  };
  std::vector<Open> stack;
  for (const Item& item : *items) {
    while (!stack.empty() && !scheme.IsAncestorId(stack.back().id, item.id)) {
      stack.pop_back();
    }
    xml::Node* parent = stack.empty() ? fragment_root : stack.back().built;
    xml::Node* built = make_node(doc.get(), item);
    RUIDX_RETURN_NOT_OK(doc->AppendChild(parent, built));
    if (built->is_element()) {
      stack.push_back({item.id, built});
    }
  }
  return Result<std::unique_ptr<xml::Document>>(std::move(doc));
}

}  // namespace

Result<std::unique_ptr<xml::Document>> ReconstructFragment(
    const Ruid2Scheme& scheme, std::vector<xml::Node*> nodes) {
  struct Item {
    Ruid2Id id;
    xml::Node* source;
  };
  std::vector<Item> items;
  items.reserve(nodes.size());
  std::unordered_set<uint32_t> selected;
  for (xml::Node* n : nodes) {
    if (n == nullptr || n->is_document() || n->is_attribute()) {
      return Status::InvalidArgument(
          "fragments are built from tree nodes (elements, text, ...)");
    }
    // The serial check alone cannot distinguish a node of another document
    // (serials restart per document), so verify the id maps back to n.
    if (!scheme.HasLabel(n) || scheme.NodeById(scheme.label(n)) != n) {
      return Status::InvalidArgument("node is not labeled by this scheme");
    }
    items.push_back({scheme.label(n), n});
    selected.insert(n->serial());
  }
  return Reconstruct(
      scheme, &items, [&selected](xml::Document* doc, const Item& item) {
        xml::Node* src = item.source;
        if (src->is_element()) {
          xml::Node* e = doc->CreateElement(src->name());
          for (const xml::Node* a : src->attributes()) {
            (void)doc->SetAttribute(e, a->name(), a->value());
          }
          // Copy the element's *direct* text so leaves keep their content
          // even when the text nodes were not selected explicitly; selected
          // text children arrive as their own items, so skip those here.
          for (const xml::Node* c : src->children()) {
            if (c->is_text() && !selected.contains(c->serial())) {
              (void)doc->AppendChild(e, doc->CreateText(c->value()));
            }
          }
          return e;
        }
        if (src->is_text()) return doc->CreateText(src->value());
        return doc->CreateComment(src->value());
      });
}

Result<std::unique_ptr<xml::Document>> ReconstructFragmentFromItems(
    const Ruid2Scheme& scheme, std::vector<FragmentItem> items) {
  return Reconstruct(scheme, &items,
                     [](xml::Document* doc, const FragmentItem& item) {
                       if (item.name.empty()) {
                         return doc->CreateText(item.value);
                       }
                       return doc->CreateElement(item.name);
                     });
}

}  // namespace core
}  // namespace ruidx
