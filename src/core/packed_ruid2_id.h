// The packed identifier fast path.
//
// The multilevel scheme exists precisely to keep per-level indices small:
// with fan-out adjustment (Sec. 2.3) real global and local indices almost
// always fit in a machine word, yet Ruid2Id carries two BigUints and every
// hot path — rparent (Fig. 6), ancestor chains, order comparison, B+tree
// keys, structural joins — pays for multi-word code paths. PackedRuid2Id is
// the trivially-copyable common case: a 2-word (128-bit) global index plus
// a 63-bit local index and a 1-bit root indicator sharing the final word.
// Parent recovery on a packed identifier is a couple of hardware divides
// and a handful of compares, with zero allocation.
//
// Why two words for the global: frame globals grow like kappa^frame_depth,
// so deep topologies overflow a single word almost immediately (a depth-250
// spine under the default area budgets reaches ~2^120) and used to spend
// their lives in the BigUint fallback. The storage key codec already caps
// identifier components at 128 bits — "use more ruid levels long before
// that" — so the 2-word packed range coincides exactly with the storable
// range: every identifier a store accepts now takes the fast path.
//
// Overflow fallback rule: an identifier is packable iff its global index
// fits in 128 bits and its local index in 63 bits; a K row participates in
// the fast path iff its global and root_local satisfy the same bounds. The
// moment either bound is exceeded — or a K row is missing — the packed
// routines report kFallback/false and the caller reruns the untouched
// BigUint path, so both paths always agree (property-tested, including at
// and across the 2^63/2^128 boundaries).
#ifndef RUIDX_CORE_PACKED_RUID2_ID_H_
#define RUIDX_CORE_PACKED_RUID2_ID_H_

#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/ktable.h"
#include "core/ruid2_id.h"

namespace ruidx {
namespace core {

/// \brief The packed form of a 2-level ruid: (g_i, l_i, r_i) in three words
/// (padded to four).
struct PackedRuid2Id {
  /// Bit 63 of `local_bits` is the root indicator; the low 63 bits are the
  /// local index. Keeping the flag in the same word makes equality three
  /// word compares.
  static constexpr uint64_t kRootBit = uint64_t{1} << 63;
  static constexpr uint64_t kLocalMask = kRootBit - 1;

  uint128_t global = 0;
  uint64_t local_bits = 0;

  uint64_t local() const { return local_bits & kLocalMask; }
  bool is_area_root() const { return (local_bits & kRootBit) != 0; }

  bool operator==(const PackedRuid2Id& o) const {
    return global == o.global && local_bits == o.local_bits;
  }
  bool operator!=(const PackedRuid2Id& o) const { return !(*this == o); }
};

static_assert(std::is_trivially_copyable_v<PackedRuid2Id>);
static_assert(sizeof(PackedRuid2Id) == 32);

/// The packed main-root identifier (1, 1, true).
inline PackedRuid2Id PackedRuid2RootId() {
  return PackedRuid2Id{1, 1 | PackedRuid2Id::kRootBit};
}

/// Packs `id` when its components are within the packed range (global
/// < 2^128, local < 2^63). Returns false — leaving *out untouched — for
/// identifiers that need the BigUint form.
inline bool PackRuid2Id(const Ruid2Id& id, PackedRuid2Id* out) {
  if (!id.global.FitsUint128() || !id.local.FitsUint64()) return false;
  uint64_t local = id.local.ToUint64();
  if ((local & PackedRuid2Id::kRootBit) != 0) return false;
  out->global = id.global.ToUint128();
  out->local_bits = local | (id.is_area_root ? PackedRuid2Id::kRootBit : 0);
  return true;
}

/// Inverse of PackRuid2Id (total: every packed value unpacks).
inline Ruid2Id UnpackRuid2Id(const PackedRuid2Id& id) {
  return Ruid2Id{BigUint::FromUint128(id.global), BigUint(id.local()),
                 id.is_area_root()};
}

/// Outcome of a packed rparent attempt.
enum class PackedParentStatus {
  kOk,            ///< *out holds the parent identifier.
  kMainRoot,      ///< the input is the main root (NotFound in the Result API)
  kNoParentInArea,///< local index < 2 (InvalidArgument in the Result API)
  kFallback,      ///< outside the packed range — rerun the BigUint path
};

/// rparent() (Fig. 6) entirely in machine-word arithmetic (the global in
/// two words, the local in one). Every quantity it computes is bounded by
/// its inputs, so the only fallback triggers are a missing/unpackable K row
/// or a frame parent below the UID domain.
inline PackedParentStatus PackedRuidParent(const PackedRuid2Id& id,
                                           uint64_t kappa, const KTable& k,
                                           PackedRuid2Id* out) {
  if (id == PackedRuid2RootId()) return PackedParentStatus::kMainRoot;
  uint128_t g = id.global;
  if (id.is_area_root()) {
    // Fig. 6, lines 1-5: the parent lives in the upper area, found by the
    // original UID parent formula over the frame.
    if (g < 2) return PackedParentStatus::kFallback;
    g = (g - 2) / kappa + 1;
  }
  const PackedKRow* row = k.FindPacked(g);
  if (row == nullptr) return PackedParentStatus::kFallback;
  uint64_t local = id.local();
  if (local < 2) return PackedParentStatus::kNoParentInArea;
  // Fig. 6, lines 6-13.
  uint64_t l = (local - 2) / row->fanout + 1;
  if (l == 1) {
    *out = PackedRuid2Id{g, row->root_local | PackedRuid2Id::kRootBit};
  } else {
    *out = PackedRuid2Id{g, l};
  }
  return PackedParentStatus::kOk;
}

/// rancestor() on packed identifiers: appends the proper-ancestor chain of
/// `id`, nearest first, to *out. Returns false (leaving *out in an
/// unspecified state) when any step leaves the packed range; the caller
/// must then rerun the BigUint path.
bool PackedRuidAncestors(const PackedRuid2Id& id, uint64_t kappa,
                         const KTable& k, std::vector<PackedRuid2Id>* out);

/// The original UID parent formula (1) on machine words; requires id >= 2.
inline uint128_t PackedUidParent(uint128_t id, uint64_t k) {
  return (id - 2) / k + 1;
}

/// UidIsAncestor on machine words (identical climb, no allocation).
inline bool PackedUidIsAncestor(uint128_t a, uint128_t d, uint64_t k) {
  if (d <= a) return false;
  uint128_t cur = d;
  while (cur > a) cur = PackedUidParent(cur, k);
  return cur == a;
}

/// UidCompareOrder (Fig. 10) on machine words.
int PackedUidCompareOrder(uint128_t a, uint128_t b, uint64_t k);

/// \name Packed fast-path switch
/// Process-wide toggle consulted by every layer that has a packed fast path
/// (rparent, the ancestor-path cache, storage key encoding, structural
/// joins). On by default; benchmarks and equivalence tests flip it to time
/// and cross-check the pure-BigUint path.
/// @{
bool PackedFastPathEnabled();
void SetPackedFastPathEnabled(bool enabled);
/// @}

}  // namespace core
}  // namespace ruidx

#endif  // RUIDX_CORE_PACKED_RUID2_ID_H_
