// The 2-level recursive UID numbering scheme (Sec. 2 of the paper).
//
// An identifier is the triple (global index, local index, root indicator)
// of Def. 3. The scheme keeps the frame fan-out κ and table K in memory, so
// rparent() (Fig. 6) and everything built on it (ancestors, order
// comparison, axis candidate generation) run without touching the tree —
// let alone the disk.
#ifndef RUIDX_CORE_RUID2_H_
#define RUIDX_CORE_RUID2_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ktable.h"
#include "core/partition.h"
#include "scheme/labeling.h"
#include "util/biguint.h"
#include "util/result.h"
#include "xml/dom.h"

namespace ruidx {
namespace core {

/// \brief A full 2-level ruid (Def. 3): (g_i, l_i, r_i).
struct Ruid2Id {
  BigUint global;
  BigUint local;
  bool is_area_root = false;

  bool operator==(const Ruid2Id& o) const {
    return is_area_root == o.is_area_root && global == o.global &&
           local == o.local;
  }
  bool operator!=(const Ruid2Id& o) const { return !(*this == o); }

  /// "(g, l, r)" in the notation of the paper.
  std::string ToString() const;

  size_t Hash() const {
    size_t h = global.Hash();
    h = h * 1099511628211ULL ^ local.Hash();
    return h * 2 + (is_area_root ? 1 : 0);
  }
};

struct Ruid2IdHash {
  size_t operator()(const Ruid2Id& id) const { return id.Hash(); }
};

/// The identifier of the main root, (1, 1, true).
Ruid2Id Ruid2RootId();

/// rparent() — the Fig. 6 algorithm as a pure function of (κ, K). Given the
/// identifier of a node, computes the identifier of its parent entirely in
/// main memory. Fails for the main root and for identifiers whose area has
/// no K row.
Result<Ruid2Id> RuidParent(const Ruid2Id& id, uint64_t kappa, const KTable& k);

/// \brief Outcome of an incremental structural update (Sec. 3.2 accounting).
struct UpdateReport {
  /// Previously labeled nodes whose identifier changed.
  uint64_t relabeled = 0;
  /// Areas whose local enumeration was redone.
  uint64_t areas_touched = 0;
  /// True when the insertion overflowed the area's local fan-out and k_i had
  /// to be enlarged.
  bool local_fanout_grew = false;
  /// Areas (and their K rows) dropped because a deletion removed them.
  uint64_t areas_dropped = 0;
};

/// \brief 2-level ruid over a DOM tree.
///
/// Implements the generic LabelingScheme interface for the cross-scheme
/// benchmarks, plus the identifier-arithmetic API (Parent/Ancestors/
/// CompareIds) that works on (κ, K) alone, plus incremental updates.
class Ruid2Scheme : public scheme::LabelingScheme {
 public:
  explicit Ruid2Scheme(PartitionOptions options = {})
      : options_(std::move(options)) {}

  // --- LabelingScheme ------------------------------------------------------
  std::string name() const override { return "ruid2"; }
  void Build(xml::Node* root) override;
  bool IsParent(const xml::Node* p, const xml::Node* c) const override;
  bool IsAncestor(const xml::Node* a, const xml::Node* d) const override;
  int CompareOrder(const xml::Node* a, const xml::Node* b) const override;
  uint64_t LabelBits(const xml::Node* n) const override;
  uint64_t TotalLabelBits() const override;
  std::string LabelString(const xml::Node* n) const override;
  /// Detects externally applied insertions/deletions and repairs only the
  /// affected areas (Sec. 3.2); returns the number of changed identifiers.
  uint64_t RelabelAndCount(xml::Node* root) override;

  // --- Identifier arithmetic (κ and K only; no tree access, no I/O) --------

  /// rparent() of Fig. 6. Fails for the main root identifier.
  Result<Ruid2Id> Parent(const Ruid2Id& id) const;

  /// rancestor(): the chain of proper ancestors, nearest first.
  std::vector<Ruid2Id> Ancestors(const Ruid2Id& id) const;

  /// True iff a is a proper ancestor of d, by identifier arithmetic.
  bool IsAncestorId(const Ruid2Id& a, const Ruid2Id& d) const;

  /// Document-order comparison (ancestors precede descendants). Uses the
  /// frame shortcut of Lemma 3 when the two areas are order-comparable and
  /// falls back to the Fig. 10 chain comparison otherwise.
  int CompareIds(const Ruid2Id& a, const Ruid2Id& b) const;

  /// Depth of the node identified by `id` (root at 0), by arithmetic alone.
  uint64_t DepthOf(const Ruid2Id& id) const;

  // --- Structure accessors --------------------------------------------------

  uint64_t kappa() const { return kappa_; }
  const KTable& ktable() const { return ktable_; }
  const Partition& partition() const { return partition_; }
  const PartitionOptions& options() const { return options_; }

  const Ruid2Id& label(const xml::Node* n) const {
    return labels_.at(n->serial());
  }
  bool HasLabel(const xml::Node* n) const {
    return labels_.contains(n->serial());
  }

  /// The node carrying identifier `id`, or nullptr when `id` is virtual or
  /// unknown. (This is the in-memory stand-in for the paper's RDBMS index.)
  xml::Node* NodeById(const Ruid2Id& id) const;

  /// Number of labeled nodes.
  size_t label_count() const { return labels_.size(); }

  /// Calls fn(node, id) for every labeled node (iteration order unspecified).
  template <typename Fn>
  void ForEachLabeled(Fn&& fn) const {
    for (const auto& [id, node] : by_id_) fn(node, id);
  }

  /// Main-memory footprint of the global parameters (κ + table K), the data
  /// the paper requires to be resident for rparent.
  uint64_t GlobalStateBytes() const { return sizeof(kappa_) + ktable_.SizeInBytes(); }

  // --- Incremental structural update (Sec. 3.2) ----------------------------

  /// Inserts `child` (a detached node, possibly with a subtree below it) as
  /// parent->children()[pos] and repairs identifiers incrementally: only the
  /// area where the update lands is re-enumerated.
  Result<UpdateReport> InsertAndRelabel(xml::Document* doc, xml::Node* parent,
                                        size_t pos, xml::Node* child);

  /// Removes the subtree rooted at `victim` (cascading, as in the paper) and
  /// repairs identifiers incrementally.
  Result<UpdateReport> RemoveAndRelabel(xml::Document* doc, xml::Node* victim);

  /// Full invariant check against the current tree: every node labeled and
  /// indexed, rparent inverts every edge, K rows consistent with the
  /// partition, κ within bounds. Returns Corruption describing the first
  /// violation. Intended for tests and post-update audits.
  Status Validate(xml::Node* root) const;

 private:
  /// Re-enumerates the local indices of one area in place. Returns the
  /// number of previously labeled nodes whose identifier changed.
  uint64_t RenumberArea(uint32_t area_idx, bool* fanout_grew);

  /// The area in which `n` takes its local index.
  uint32_t MemberAreaOf(const xml::Node* n) const;
  /// The area in which children of `n` are enumerated.
  uint32_t ExpandAreaOf(const xml::Node* n) const;

  void SetLabel(xml::Node* n, Ruid2Id id, uint64_t* changed);
  void DropLabel(xml::Node* n);

  PartitionOptions options_;
  Partition partition_;
  uint64_t kappa_ = 1;
  KTable ktable_;
  std::unordered_map<uint32_t, Ruid2Id> labels_;  // serial -> id
  std::unordered_map<Ruid2Id, xml::Node*, Ruid2IdHash> by_id_;
  /// global index -> area index, for update paths that need the area.
  std::unordered_map<BigUint, uint32_t, BigUintHash> area_by_global_;
  /// area index -> global index (inverse of area_by_global_).
  std::vector<BigUint> area_globals_;
};

}  // namespace core
}  // namespace ruidx

#endif  // RUIDX_CORE_RUID2_H_
