// The 2-level recursive UID numbering scheme (Sec. 2 of the paper).
//
// An identifier is the triple (global index, local index, root indicator)
// of Def. 3. The scheme keeps the frame fan-out κ and table K in memory, so
// rparent() (Fig. 6) and everything built on it (ancestors, order
// comparison, axis candidate generation) run without touching the tree —
// let alone the disk.
#ifndef RUIDX_CORE_RUID2_H_
#define RUIDX_CORE_RUID2_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ancestor_path_cache.h"
#include "core/ktable.h"
#include "core/packed_ruid2_id.h"
#include "core/partition.h"
#include "core/ruid2_id.h"
#include "scheme/labeling.h"
#include "util/biguint.h"
#include "util/result.h"
#include "xml/dom.h"

namespace ruidx {
namespace util {
class ThreadPool;
}  // namespace util

namespace core {

/// \brief 2-level ruid over a DOM tree.
///
/// Implements the generic LabelingScheme interface for the cross-scheme
/// benchmarks, plus the identifier-arithmetic API (Parent/Ancestors/
/// CompareIds) that works on (κ, K) alone, plus incremental updates.
class Ruid2Scheme : public scheme::LabelingScheme {
 public:
  explicit Ruid2Scheme(PartitionOptions options = {})
      : options_(std::move(options)) {}

  // --- LabelingScheme ------------------------------------------------------
  std::string name() const override { return "ruid2"; }
  void Build(xml::Node* root) override;
  /// Parallel build: UID-local areas are independent by construction
  /// (Defs. 1-3), so their local enumerations run concurrently on `pool`
  /// (pure per-area computation), followed by a deterministic serial merge
  /// in area order. A null pool (or a one-worker pool) is the serial path;
  /// results are bit-identical for every thread count.
  void Build(xml::Node* root, util::ThreadPool* pool);
  bool IsParent(const xml::Node* p, const xml::Node* c) const override;
  bool IsAncestor(const xml::Node* a, const xml::Node* d) const override;
  int CompareOrder(const xml::Node* a, const xml::Node* b) const override;
  uint64_t LabelBits(const xml::Node* n) const override;
  uint64_t TotalLabelBits() const override;
  std::string LabelString(const xml::Node* n) const override;
  /// Detects externally applied insertions/deletions and repairs only the
  /// affected areas (Sec. 3.2); returns the number of changed identifiers.
  uint64_t RelabelAndCount(xml::Node* root) override;

  // --- Identifier arithmetic (κ and K only; no tree access, no I/O) --------

  /// rparent() of Fig. 6. Fails for the main root identifier.
  Result<Ruid2Id> Parent(const Ruid2Id& id) const;

  /// rancestor(): the chain of proper ancestors, nearest first. Served from
  /// the per-area ancestor-path cache: only the climb inside the node's own
  /// area costs fresh rparent() divisions.
  std::vector<Ruid2Id> Ancestors(const Ruid2Id& id) const;

  /// Packed rancestor(): writes the proper-ancestor chain of `id`, nearest
  /// first, as trivially-copyable packed identifiers into *out with no per-element
  /// allocation. Returns false (with *out unspecified) when `id` or any
  /// ancestor is outside the packed range or the fast path is disabled —
  /// callers then use Ancestors().
  bool AncestorsPacked(const Ruid2Id& id,
                       std::vector<PackedRuid2Id>* out) const;

  /// True iff a is a proper ancestor of d, by identifier arithmetic.
  bool IsAncestorId(const Ruid2Id& a, const Ruid2Id& d) const;

  /// Document-order comparison (ancestors precede descendants). Uses the
  /// frame shortcut of Lemma 3 when the two areas are order-comparable and
  /// falls back to the Fig. 10 chain comparison otherwise.
  int CompareIds(const Ruid2Id& a, const Ruid2Id& b) const;

  /// Depth of the node identified by `id` (root at 0), by arithmetic alone.
  uint64_t DepthOf(const Ruid2Id& id) const;

  // --- Structure accessors --------------------------------------------------

  uint64_t kappa() const { return kappa_; }
  const KTable& ktable() const { return ktable_; }
  const Partition& partition() const { return partition_; }
  const PartitionOptions& options() const { return options_; }

  /// The per-area ancestor-path cache behind Ancestors/CompareIds/
  /// IsAncestorId. Exposed for statistics and for benchmarking the uncached
  /// baseline (set_enabled(false)); invalidation is automatic.
  AncestorPathCache& ancestor_cache() const { return ancestor_cache_; }

  const Ruid2Id& label(const xml::Node* n) const {
    return labels_.at(n->serial());
  }
  bool HasLabel(const xml::Node* n) const {
    return labels_.contains(n->serial());
  }

  /// The node carrying identifier `id`, or nullptr when `id` is virtual or
  /// unknown. (This is the in-memory stand-in for the paper's RDBMS index.)
  xml::Node* NodeById(const Ruid2Id& id) const;

  /// Number of labeled nodes.
  size_t label_count() const { return labels_.size(); }

  /// Calls fn(node, id) for every labeled node (iteration order unspecified).
  template <typename Fn>
  void ForEachLabeled(Fn&& fn) const {
    for (const auto& [id, node] : by_id_) fn(node, id);
  }

  /// Main-memory footprint of the global parameters (κ + table K), the data
  /// the paper requires to be resident for rparent.
  uint64_t GlobalStateBytes() const { return sizeof(kappa_) + ktable_.SizeInBytes(); }

  // --- Incremental structural update (Sec. 3.2) ----------------------------

  /// Inserts `child` (a detached node, possibly with a subtree below it) as
  /// parent->children()[pos] and repairs identifiers incrementally: only the
  /// area where the update lands is re-enumerated.
  Result<UpdateReport> InsertAndRelabel(xml::Document* doc, xml::Node* parent,
                                        size_t pos, xml::Node* child);

  /// Removes the subtree rooted at `victim` (cascading, as in the paper) and
  /// repairs identifiers incrementally.
  Result<UpdateReport> RemoveAndRelabel(xml::Document* doc, xml::Node* victim);

  /// Full invariant check against the current tree: every node labeled and
  /// indexed, rparent inverts every edge, K rows consistent with the
  /// partition, κ within bounds. Returns Corruption describing the first
  /// violation. Intended for tests and post-update audits.
  Status Validate(xml::Node* root) const;

 private:
  /// Corruption injection for the invariant-verifier tests (defined there).
  friend class Ruid2SchemeTestPeer;

  /// The pure half of area (re-)enumeration: walks one area and computes
  /// the labels every member should carry, the area's (possibly grown)
  /// local fan-out, and the root_local patches owed to child-area K rows —
  /// without mutating any scheme state. Reads only immutable-during-build
  /// structures, so independent areas can be enumerated on worker threads.
  struct AreaEnumeration {
    uint32_t area_idx = 0;
    uint64_t fanout = 1;
    bool fanout_grew = false;
    uint64_t member_count = 1;
    /// (node, id) in local enumeration order, area root excluded.
    std::vector<std::pair<xml::Node*, Ruid2Id>> labels;
    /// Child areas rooted inside this area: (child area idx, root_local).
    std::vector<std::pair<uint32_t, BigUint>> child_root_locals;
  };
  AreaEnumeration EnumerateArea(uint32_t area_idx) const;

  /// The mutating half: publishes an enumeration into the label maps, the
  /// partition, and table K. Must run serially (callers order by area
  /// index, which makes parallel builds deterministic). Returns the number
  /// of previously labeled nodes whose identifier changed.
  uint64_t ApplyEnumeration(const AreaEnumeration& e, bool* fanout_grew);

  /// Re-enumerates the local indices of one area in place. Returns the
  /// number of previously labeled nodes whose identifier changed.
  uint64_t RenumberArea(uint32_t area_idx, bool* fanout_grew);

  /// The area in which `n` takes its local index.
  uint32_t MemberAreaOf(const xml::Node* n) const;
  /// The area in which children of `n` are enumerated.
  uint32_t ExpandAreaOf(const xml::Node* n) const;

  void SetLabel(xml::Node* n, Ruid2Id id, uint64_t* changed);
  void DropLabel(xml::Node* n);

  PartitionOptions options_;
  Partition partition_;
  uint64_t kappa_ = 1;
  KTable ktable_;
  std::unordered_map<uint32_t, Ruid2Id> labels_;  // serial -> id
  std::unordered_map<Ruid2Id, xml::Node*, Ruid2IdHash> by_id_;
  /// global index -> area index, for update paths that need the area.
  std::unordered_map<BigUint, uint32_t, BigUintHash> area_by_global_;
  /// area index -> global index (inverse of area_by_global_).
  std::vector<BigUint> area_globals_;
  /// Memoized frame ancestor chains, one per area; invalidated by the
  /// update paths through UpdateReport.
  mutable AncestorPathCache ancestor_cache_;
};

}  // namespace core
}  // namespace ruidx

#endif  // RUIDX_CORE_RUID2_H_
