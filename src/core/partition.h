// Partitioning an XML tree into UID-local areas (Defs. 1-2) and building the
// frame F over their roots, including the Sec. 2.3 fan-out adjustment.
//
// The paper specifies the *constraints* a partition must satisfy — every
// area is an induced subtree, areas overlap only at area roots, the frame
// fan-out should not exceed the source tree's fan-out — but leaves the
// partitioning policy open. We use a greedy top-down policy with two
// budgets: an area stops growing when it reaches `max_area_nodes` members or
// `max_area_depth` levels, whichever comes first; the children at the
// boundary become the roots of new areas. The adjustment pass then promotes
// additional "marked" nodes to area roots (Fig. 7) until the frame fan-out
// is within the source fan-out.
#ifndef RUIDX_CORE_PARTITION_H_
#define RUIDX_CORE_PARTITION_H_

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/result.h"
#include "xml/dom.h"

namespace ruidx {
namespace core {

struct PartitionOptions {
  /// Maximum number of locally enumerated nodes per area (root included).
  uint64_t max_area_nodes = 256;
  /// Maximum depth of an area (root at depth 0).
  uint64_t max_area_depth = 6;
  /// Merge floor: after the greedy selection, areas with fewer than this
  /// many members are folded back into their parent area (bottom-up) as
  /// long as the union stays within 2x `max_area_nodes`. Topology
  /// accidents — a depth budget slicing a long chain, a spill right before
  /// a subtree ends — otherwise litter the partition with near-empty
  /// areas, and every area multiplies downstream per-area cost (KTable
  /// rows, shards, frame identifiers). Merging trades the other budgets
  /// away by design: a merged area may run deeper than `max_area_depth`
  /// and up to twice `max_area_nodes`. 0 disables the pass.
  uint64_t min_area_nodes = 0;
  /// Adaptive granularity: when positive, the node budget is raised (never
  /// lowered) to ceil(node_count / target_area_count) before partitioning,
  /// the depth budget is lifted, and — unless the caller set one — the
  /// merge floor defaults to half the effective node budget. Area count
  /// then tracks data volume instead of topology: a deep chain and a flat
  /// fan of the same size partition into a similar number of areas. 0
  /// keeps the explicit budgets above.
  uint64_t target_area_count = 0;
  /// Apply the Sec. 2.3 promotion pass so that the frame fan-out never
  /// exceeds the source tree fan-out.
  bool adjust_fanout = true;
};

/// \brief The result of partitioning: the areas, the frame, and per-node
/// membership.
struct Partition {
  static constexpr uint32_t kNoArea = std::numeric_limits<uint32_t>::max();

  struct Area {
    xml::Node* root = nullptr;
    /// Index of the parent area in the frame; kNoArea for the main area.
    uint32_t parent_area = kNoArea;
    /// Child areas in document order of their roots (this order is what
    /// makes Lemma 3 hold for the frame enumeration).
    std::vector<uint32_t> child_areas;
    /// Local maximal fan-out k_i: the largest fan-out among the area's
    /// expanding members (nodes whose children are enumerated in this area).
    uint64_t local_fanout = 1;
    /// Number of nodes carrying a local index in this area (root included).
    uint64_t member_count = 1;
  };

  std::vector<Area> areas;  // areas[0] is rooted at the tree root
  /// serial -> index of the area in which the node takes its local index.
  /// Area roots map to the *upper* area; the tree root maps to area 0.
  std::unordered_map<uint32_t, uint32_t> member_area;
  /// serial -> index of the area this node roots (absent for non-roots).
  std::unordered_map<uint32_t, uint32_t> rooted_area;

  bool IsAreaRoot(const xml::Node* n) const {
    return rooted_area.contains(n->serial());
  }

  /// Maximal fan-out of the frame F (>= 1).
  uint64_t FrameFanout() const;
};

/// Partitions the tree rooted at `root`. Fails on a null root.
Result<Partition> PartitionTree(xml::Node* root, const PartitionOptions& options);

/// Rebuilds a Partition from an explicit set of area-root serials (the tree
/// root is always included). Exposed for tests and for the adjustment pass.
Partition DerivePartition(xml::Node* root,
                          const std::unordered_set<uint32_t>& root_serials);

}  // namespace core
}  // namespace ruidx

#endif  // RUIDX_CORE_PARTITION_H_
