// A lightweight in-memory DOM for XML documents.
//
// The numbering schemes in this library operate over the node tree exposed
// here: every non-attribute node (element, text, comment, processing
// instruction) is part of the tree and receives an identifier; attributes
// hang off their owner element and are reached through the attribute axis,
// mirroring the XPath data model the paper targets.
#ifndef RUIDX_XML_DOM_H_
#define RUIDX_XML_DOM_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ruidx {
namespace xml {

enum class NodeType : uint8_t {
  kDocument,
  kElement,
  kText,
  kComment,
  kProcessingInstruction,
  kAttribute,
};

const char* NodeTypeToString(NodeType t);

class Document;

/// \brief A node in the document tree.
///
/// Nodes are owned by their Document and addressed by raw pointers that stay
/// valid until the document is destroyed (removal detaches a subtree but the
/// storage is reclaimed only with the document).
class Node {
 public:
  NodeType type() const { return type_; }
  /// Tag name for elements, attribute name for attributes, target for PIs;
  /// empty for text/comment/document nodes.
  const std::string& name() const { return name_; }
  /// Character data for text/comment nodes, value for attributes and PIs.
  const std::string& value() const { return value_; }
  void set_value(std::string v) { value_ = std::move(v); }

  Node* parent() const { return parent_; }
  const std::vector<Node*>& children() const { return children_; }
  const std::vector<Node*>& attributes() const { return attributes_; }

  bool is_element() const { return type_ == NodeType::kElement; }
  bool is_text() const { return type_ == NodeType::kText; }
  bool is_document() const { return type_ == NodeType::kDocument; }
  bool is_attribute() const { return type_ == NodeType::kAttribute; }

  /// A dense per-document serial number assigned at creation; stable across
  /// structural updates, never reused. Side tables (labels, indexes) key on
  /// this.
  uint32_t serial() const { return serial_; }

  /// Number of children.
  size_t fanout() const { return children_.size(); }

  /// Position of this node among its parent's children; -1 for roots.
  int IndexInParent() const;

  /// Attribute value by name, or nullptr when absent.
  const std::string* GetAttribute(std::string_view name) const;

  /// First element child with the given tag name, or nullptr.
  Node* FirstChildElement(std::string_view tag) const;

  /// Concatenation of all descendant text node values.
  std::string TextContent() const;

  /// True iff `other` is a proper ancestor of this node.
  bool HasAncestor(const Node* other) const;

 private:
  friend class Document;
  Node(NodeType type, uint32_t serial) : type_(type), serial_(serial) {}

  NodeType type_;
  uint32_t serial_;
  std::string name_;
  std::string value_;
  Node* parent_ = nullptr;
  std::vector<Node*> children_;
  std::vector<Node*> attributes_;
};

/// \brief Owns a tree of nodes plus the factory and mutation API.
class Document {
 public:
  Document();
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  /// The synthetic document node (parent of the root element, comments and
  /// PIs outside it).
  Node* document_node() { return doc_node_; }
  const Node* document_node() const { return doc_node_; }

  /// The root element, or nullptr for an empty document.
  Node* root() const;

  // --- Node factory -------------------------------------------------------

  Node* CreateElement(std::string_view tag);
  Node* CreateText(std::string_view data);
  Node* CreateComment(std::string_view data);
  Node* CreateProcessingInstruction(std::string_view target, std::string_view data);

  // --- Structural mutation -------------------------------------------------

  /// Appends `child` (a detached node) as the last child of `parent`.
  Status AppendChild(Node* parent, Node* child);

  /// Inserts `child` so that it becomes parent->children()[pos]; existing
  /// children at pos.. shift right. pos may equal the child count (append).
  Status InsertChild(Node* parent, size_t pos, Node* child);

  /// Detaches the subtree rooted at `node` from its parent. The nodes stay
  /// owned by the document and may be re-inserted. Deletion in XML is
  /// cascading (the whole subtree goes), which this models.
  Status RemoveSubtree(Node* node);

  /// Sets an attribute on an element (replaces an existing value).
  Status SetAttribute(Node* element, std::string_view name, std::string_view value);

  // --- Introspection -------------------------------------------------------

  /// Total nodes ever created (serial numbers are < this).
  uint32_t serial_count() const { return next_serial_; }

  /// Number of nodes currently attached under the document node (excluding
  /// the document node itself, including attributes = false).
  size_t CountAttachedNodes(bool include_attributes = false) const;

 private:
  Node* NewNode(NodeType type);

  std::deque<std::unique_ptr<Node>> pool_;
  Node* doc_node_;
  uint32_t next_serial_ = 0;
};

/// Preorder (document-order) traversal of the tree rooted at `root`,
/// excluding attributes. Calls fn(node, depth) with depth(root)=0.
/// If fn returns false, the node's subtree is skipped.
template <typename Fn>
void PreorderTraverse(Node* root, Fn&& fn) {
  struct Frame {
    Node* node;
    int depth;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (!fn(f.node, f.depth)) continue;
    const auto& ch = f.node->children();
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) {
      stack.push_back({*it, f.depth + 1});
    }
  }
}

/// Collects the nodes of the subtree rooted at `root` in document order.
std::vector<Node*> CollectPreorder(Node* root);

/// Deep-copies the subtree rooted at `src` (attributes included) into `dst`,
/// returning the detached copy's root. `src` may live in another document.
Node* DeepCopy(Document* dst, const Node* src);

}  // namespace xml
}  // namespace ruidx

#endif  // RUIDX_XML_DOM_H_
