// Synthetic XML workload generators.
//
// The paper evaluates on "several sample XML documents" whose topology it
// describes only qualitatively (large trees, high degree of recursion,
// disparate fan-outs). These generators produce deterministic documents that
// span that space:
//
//  * Uniform    — near-complete k-ary trees: the friendly case for the
//                 original UID (no virtual nodes wasted).
//  * Random     — random attachment with bounded fan-out, mixed shapes.
//  * Skewed     — Zipf-distributed fan-outs: a handful of very wide nodes
//                 force a large global k and make the original UID enumerate
//                 mostly virtual nodes.
//  * Deep       — tall chains of recursive same-name elements ("high degree
//                 of recursion", Sec. 5): identifier values grow like
//                 k^depth and overflow machine integers.
//  * Dblp-like  — a bibliography: one root with a huge flat fan-out of
//                 small records.
//  * Xmark-like — an auction site in the shape of the XMark benchmark:
//                 moderate depth, wide lists of items/people/auctions.
#ifndef RUIDX_XML_GENERATOR_H_
#define RUIDX_XML_GENERATOR_H_

#include <cstdint>
#include <memory>

#include "xml/dom.h"

namespace ruidx {
namespace xml {

/// A near-complete `fanout`-ary element tree with ~`node_budget` nodes.
std::unique_ptr<Document> GenerateUniformTree(uint64_t node_budget,
                                              uint64_t fanout);

struct RandomTreeConfig {
  uint64_t node_budget = 1000;
  uint64_t max_fanout = 8;
  /// Probability that a new node attaches to the most recently created node
  /// (depth bias); otherwise it attaches to a uniformly random open node.
  double depth_bias = 0.3;
  /// Number of distinct tag names to draw from.
  uint32_t tag_alphabet = 16;
  /// Attach a short text child to this fraction of leaves.
  double text_probability = 0.0;
  uint64_t seed = 42;
};

std::unique_ptr<Document> GenerateRandomTree(const RandomTreeConfig& config);

struct SkewedTreeConfig {
  uint64_t node_budget = 1000;
  /// Maximum fan-out; the Zipf skew means only a few nodes reach it.
  uint64_t max_fanout = 1000;
  double zipf_theta = 0.9;
  uint64_t seed = 42;
};

std::unique_ptr<Document> GenerateSkewedTree(const SkewedTreeConfig& config);

struct DeepTreeConfig {
  /// Length of the recursive spine (depth of the tree).
  uint64_t depth = 64;
  /// Element children attached at every spine node besides the spine child.
  uint64_t siblings_per_level = 2;
  uint64_t seed = 42;
};

std::unique_ptr<Document> GenerateDeepTree(const DeepTreeConfig& config);

/// DBLP-shaped bibliography: /dblp with `records` flat children, each a small
/// publication record (author*, title, year). Root fan-out == records.
std::unique_ptr<Document> GenerateDblpLike(uint64_t records, uint64_t seed = 42);

struct XmarkConfig {
  uint64_t items = 100;
  uint64_t people = 50;
  uint64_t open_auctions = 60;
  uint64_t closed_auctions = 30;
  uint64_t categories = 10;
  uint64_t seed = 42;
};

/// XMark-auction-shaped site document (site/regions/.../item, people/person,
/// open_auctions/open_auction with bidder lists, ...).
std::unique_ptr<Document> GenerateXmarkLike(const XmarkConfig& config);

}  // namespace xml
}  // namespace ruidx

#endif  // RUIDX_XML_GENERATOR_H_
