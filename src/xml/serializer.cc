#include "xml/serializer.h"

#include <sstream>
#include <vector>

namespace ruidx {
namespace xml {

std::string EscapeText(const std::string& data) {
  std::string out;
  out.reserve(data.size());
  for (char c : data) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string EscapeAttribute(const std::string& data) {
  std::string out;
  out.reserve(data.size());
  for (char c : data) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

/// Iterative (explicit-stack) serialization so arbitrarily deep documents
/// cannot overflow the call stack.
void SerializeNode(const Node* root, const SerializeOptions& options,
                   std::ostringstream* out) {
  struct Frame {
    const Node* node;
    int depth;
    bool entering;
  };
  auto indent = [&](int depth) {
    if (options.pretty) {
      for (int i = 0; i < depth; ++i) *out << "  ";
    }
  };
  auto newline = [&]() {
    if (options.pretty) *out << "\n";
  };

  std::vector<Frame> stack{{root, 0, true}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const Node* node = f.node;
    if (!f.entering) {
      indent(f.depth);
      *out << "</" << node->name() << ">";
      newline();
      continue;
    }
    switch (node->type()) {
      case NodeType::kDocument: {
        const auto& ch = node->children();
        for (auto it = ch.rbegin(); it != ch.rend(); ++it) {
          stack.push_back({*it, f.depth, true});
        }
        continue;
      }
      case NodeType::kText:
        indent(f.depth);
        *out << EscapeText(node->value());
        newline();
        continue;
      case NodeType::kComment:
        indent(f.depth);
        *out << "<!--" << node->value() << "-->";
        newline();
        continue;
      case NodeType::kProcessingInstruction:
        indent(f.depth);
        *out << "<?" << node->name();
        if (!node->value().empty()) *out << " " << node->value();
        *out << "?>";
        newline();
        continue;
      case NodeType::kAttribute:
        continue;  // serialized with the owner element
      case NodeType::kElement:
        break;
    }
    indent(f.depth);
    *out << "<" << node->name();
    for (const Node* a : node->attributes()) {
      *out << " " << a->name() << "=\"" << EscapeAttribute(a->value()) << "\"";
    }
    if (node->children().empty()) {
      *out << "/>";
      newline();
      continue;
    }
    *out << ">";
    newline();
    stack.push_back({node, f.depth, false});  // close tag after children
    const auto& ch = node->children();
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) {
      stack.push_back({*it, f.depth + 1, true});
    }
  }
}

}  // namespace

std::string Serialize(const Node* node, const SerializeOptions& options) {
  std::ostringstream out;
  if (options.declaration) {
    out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    if (options.pretty) out << "\n";
  }
  SerializeNode(node, options, &out);
  return out.str();
}

}  // namespace xml
}  // namespace ruidx
