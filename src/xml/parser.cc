#include "xml/parser.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

#include "xml/sax.h"

namespace ruidx {
namespace xml {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

bool IsSpace(char c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; }

/// Appends the UTF-8 encoding of `cp` to `out`.
void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

/// The tokenizer: drives a SaxHandler over the input. The DOM parser is one
/// such handler (DomBuilder below).
class SaxDriver {
 public:
  SaxDriver(std::string_view input, SaxHandler* handler,
            const ParseOptions& options)
      : input_(input), handler_(handler), options_(options) {}

  Status Run() {
    RUIDX_RETURN_NOT_OK(ParseProlog());
    while (!AtEnd()) {
      RUIDX_RETURN_NOT_OK(ParseContent());
    }
    if (!open_.empty()) {
      return Error("unexpected end of input: unclosed element <" +
                   open_.back() + ">");
    }
    if (!seen_root_) return Error("document has no root element");
    return Status::OK();
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < input_.size() ? input_[pos_ + off] : '\0';
  }

  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void AdvanceBy(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) Advance();
  }

  bool LookingAt(std::string_view s) const {
    return input_.compare(pos_, s.size(), s) == 0;
  }

  Status Error(const std::string& msg) const {
    std::ostringstream os;
    os << msg << " at " << line_ << ":" << col_;
    return Status::ParseError(os.str());
  }

  void SkipSpace() {
    while (!AtEnd() && IsSpace(Peek())) Advance();
  }

  Status Expect(char c) {
    if (AtEnd() || Peek() != c) {
      return Error(std::string("expected '") + c + "'");
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Error("expected a name");
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(input_.substr(start, pos_ - start));
  }

  /// Resolves &...; starting at the '&'. Appends the expansion to out.
  Status ParseReference(std::string* out) {
    RUIDX_RETURN_NOT_OK(Expect('&'));
    if (!AtEnd() && Peek() == '#') {
      Advance();
      uint32_t cp = 0;
      bool hex = false;
      if (!AtEnd() && (Peek() == 'x' || Peek() == 'X')) {
        hex = true;
        Advance();
      }
      size_t digits = 0;
      while (!AtEnd() && Peek() != ';') {
        char c = Peek();
        uint32_t d;
        if (c >= '0' && c <= '9') {
          d = static_cast<uint32_t>(c - '0');
        } else if (hex && c >= 'a' && c <= 'f') {
          d = static_cast<uint32_t>(c - 'a' + 10);
        } else if (hex && c >= 'A' && c <= 'F') {
          d = static_cast<uint32_t>(c - 'A' + 10);
        } else {
          return Error("bad character reference");
        }
        cp = cp * (hex ? 16 : 10) + d;
        if (cp > 0x10FFFF) return Error("character reference out of range");
        ++digits;
        Advance();
      }
      if (digits == 0) return Error("empty character reference");
      RUIDX_RETURN_NOT_OK(Expect(';'));
      AppendUtf8(cp, out);
      return Status::OK();
    }
    RUIDX_ASSIGN_OR_RETURN(std::string name, ParseName());
    RUIDX_RETURN_NOT_OK(Expect(';'));
    if (name == "lt") {
      *out += '<';
    } else if (name == "gt") {
      *out += '>';
    } else if (name == "amp") {
      *out += '&';
    } else if (name == "apos") {
      *out += '\'';
    } else if (name == "quot") {
      *out += '"';
    } else {
      return Error("unknown entity '&" + name + ";'");
    }
    return Status::OK();
  }

  Status ParseProlog() {
    SkipSpace();
    if (LookingAt("<?xml")) {
      RUIDX_RETURN_NOT_OK(SkipUntil("?>"));
    }
    for (;;) {
      SkipSpace();
      if (LookingAt("<!DOCTYPE")) {
        RUIDX_RETURN_NOT_OK(SkipDoctype());
      } else if (LookingAt("<!--") || LookingAt("<?")) {
        RUIDX_RETURN_NOT_OK(ParseContent());
      } else {
        break;
      }
    }
    return Status::OK();
  }

  Status SkipUntil(std::string_view terminator) {
    size_t found = input_.find(terminator, pos_);
    if (found == std::string_view::npos) {
      return Error("unterminated construct (expected '" +
                   std::string(terminator) + "')");
    }
    AdvanceBy(found - pos_ + terminator.size());
    return Status::OK();
  }

  Status SkipDoctype() {
    AdvanceBy(9);  // "<!DOCTYPE"
    int bracket_depth = 0;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '[') {
        ++bracket_depth;
      } else if (c == ']') {
        --bracket_depth;
      } else if (c == '>' && bracket_depth == 0) {
        Advance();
        return Status::OK();
      }
      Advance();
    }
    return Error("unterminated DOCTYPE");
  }

  Status ParseContent() {
    if (AtEnd()) return Status::OK();
    if (Peek() == '<') {
      if (LookingAt("<!--")) return ParseComment();
      if (LookingAt("<![CDATA[")) return ParseCData();
      if (LookingAt("<?")) return ParsePI();
      if (PeekAt(1) == '/') return ParseCloseTag();
      return ParseOpenTag();
    }
    return ParseText();
  }

  Status ParseComment() {
    AdvanceBy(4);  // "<!--"
    size_t end = input_.find("-->", pos_);
    if (end == std::string_view::npos) return Error("unterminated comment");
    std::string_view data = input_.substr(pos_, end - pos_);
    AdvanceBy(end - pos_ + 3);
    if (options_.keep_comments && !open_.empty()) {
      return handler_->Comment(data);
    }
    return Status::OK();
  }

  Status ParseCData() {
    AdvanceBy(9);  // "<![CDATA["
    size_t end = input_.find("]]>", pos_);
    if (end == std::string_view::npos) return Error("unterminated CDATA");
    std::string_view data = input_.substr(pos_, end - pos_);
    AdvanceBy(end - pos_ + 3);
    if (open_.empty()) return Error("character data outside the root element");
    return handler_->Text(data);
  }

  Status ParsePI() {
    AdvanceBy(2);  // "<?"
    RUIDX_ASSIGN_OR_RETURN(std::string target, ParseName());
    SkipSpace();
    size_t end = input_.find("?>", pos_);
    if (end == std::string_view::npos) {
      return Error("unterminated processing instruction");
    }
    std::string_view data = input_.substr(pos_, end - pos_);
    AdvanceBy(end - pos_ + 2);
    if (options_.keep_processing_instructions && !open_.empty()) {
      return handler_->ProcessingInstruction(target, data);
    }
    return Status::OK();
  }

  Status ParseOpenTag() {
    Advance();  // '<'
    RUIDX_ASSIGN_OR_RETURN(std::string tag, ParseName());
    std::vector<SaxAttribute> attributes;
    for (;;) {
      SkipSpace();
      if (AtEnd()) return Error("unterminated start tag <" + tag + ">");
      if (Peek() == '>' || LookingAt("/>")) break;
      RUIDX_ASSIGN_OR_RETURN(std::string attr, ParseName());
      SkipSpace();
      RUIDX_RETURN_NOT_OK(Expect('='));
      SkipSpace();
      RUIDX_ASSIGN_OR_RETURN(std::string value, ParseAttrValue());
      for (const SaxAttribute& existing : attributes) {
        if (existing.first == attr) {
          return Error("duplicate attribute '" + attr + "'");
        }
      }
      attributes.emplace_back(std::move(attr), std::move(value));
    }
    bool self_closing = false;
    if (LookingAt("/>")) {
      self_closing = true;
      AdvanceBy(2);
    } else {
      RUIDX_RETURN_NOT_OK(Expect('>'));
    }
    if (open_.empty()) {
      if (seen_root_) return Error("multiple root elements");
      seen_root_ = true;
    }
    RUIDX_RETURN_NOT_OK(handler_->StartElement(tag, attributes));
    if (self_closing) return handler_->EndElement(tag);
    open_.push_back(std::move(tag));
    return Status::OK();
  }

  Status ParseCloseTag() {
    AdvanceBy(2);  // "</"
    RUIDX_ASSIGN_OR_RETURN(std::string tag, ParseName());
    SkipSpace();
    RUIDX_RETURN_NOT_OK(Expect('>'));
    if (open_.empty()) {
      return Error("close tag </" + tag + "> with no open element");
    }
    if (open_.back() != tag) {
      return Error("mismatched close tag </" + tag + ">, open element is <" +
                   open_.back() + ">");
    }
    open_.pop_back();
    return handler_->EndElement(tag);
  }

  Result<std::string> ParseAttrValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    char quote = Peek();
    Advance();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        RUIDX_RETURN_NOT_OK(ParseReference(&value));
      } else if (Peek() == '<') {
        return Error("'<' not allowed in attribute value");
      } else {
        value += Peek();
        Advance();
      }
    }
    RUIDX_RETURN_NOT_OK(Expect(quote));
    return value;
  }

  Status ParseText() {
    std::string text;
    bool all_space = true;
    while (!AtEnd() && Peek() != '<') {
      if (Peek() == '&') {
        RUIDX_RETURN_NOT_OK(ParseReference(&text));
        all_space = false;
      } else {
        if (!IsSpace(Peek())) all_space = false;
        text += Peek();
        Advance();
      }
    }
    if (open_.empty()) {
      if (all_space) return Status::OK();
      return Error("character data outside the root element");
    }
    if (all_space && options_.skip_whitespace_text) return Status::OK();
    return handler_->Text(text);
  }

  std::string_view input_;
  SaxHandler* handler_;
  const ParseOptions& options_;
  std::vector<std::string> open_;  // open element names
  bool seen_root_ = false;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
};

/// The DOM parser as a SAX handler.
class DomBuilder : public SaxHandler {
 public:
  DomBuilder() : doc_(std::make_unique<Document>()) {
    open_.push_back(doc_->document_node());
  }

  Status StartElement(std::string_view name,
                      const std::vector<SaxAttribute>& attributes) override {
    Node* element = doc_->CreateElement(name);
    for (const SaxAttribute& attr : attributes) {
      RUIDX_RETURN_NOT_OK(doc_->SetAttribute(element, attr.first, attr.second));
    }
    RUIDX_RETURN_NOT_OK(doc_->AppendChild(open_.back(), element));
    open_.push_back(element);
    return Status::OK();
  }

  Status EndElement(std::string_view) override {
    open_.pop_back();
    return Status::OK();
  }

  Status Text(std::string_view data) override {
    // Merge adjacent text (e.g. CDATA next to character data).
    Node* parent = open_.back();
    if (!parent->children().empty() && parent->children().back()->is_text()) {
      Node* last = parent->children().back();
      last->set_value(last->value() + std::string(data));
      return Status::OK();
    }
    return doc_->AppendChild(parent, doc_->CreateText(data));
  }

  Status Comment(std::string_view data) override {
    return doc_->AppendChild(open_.back(), doc_->CreateComment(data));
  }

  Status ProcessingInstruction(std::string_view target,
                               std::string_view data) override {
    return doc_->AppendChild(open_.back(),
                             doc_->CreateProcessingInstruction(target, data));
  }

  std::unique_ptr<Document> Take() { return std::move(doc_); }

 private:
  std::unique_ptr<Document> doc_;
  std::vector<Node*> open_;
};

}  // namespace

Status SaxParse(std::string_view input, SaxHandler* handler,
                const ParseOptions& options) {
  SaxDriver driver(input, handler, options);
  return driver.Run();
}

Status SaxParse(std::string_view input, SaxHandler* handler) {
  return SaxParse(input, handler, ParseOptions{});
}

Result<std::unique_ptr<Document>> Parse(std::string_view input,
                                        const ParseOptions& options) {
  DomBuilder builder;
  RUIDX_RETURN_NOT_OK(SaxParse(input, &builder, options));
  return builder.Take();
}

Result<std::unique_ptr<Document>> ParseFile(const std::string& path,
                                            const ParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string content = buf.str();
  return Parse(content, options);
}

}  // namespace xml
}  // namespace ruidx
