#include "xml/stats.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace ruidx {
namespace xml {

TreeStats ComputeStats(Node* root) {
  TreeStats s;
  uint64_t internal_nodes = 0;
  uint64_t total_children = 0;

  // Recursion depth per tag along the current path; maintained with an
  // explicit stack so arbitrarily deep documents don't overflow the C stack.
  std::unordered_map<std::string, uint64_t> tag_depth;
  struct Frame {
    Node* node;
    int depth;
    bool entering;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0, true});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    Node* n = f.node;
    if (!f.entering) {
      if (n->is_element()) --tag_depth[n->name()];
      continue;
    }
    ++s.node_count;
    if (n->is_element()) {
      ++s.element_count;
      uint64_t d = ++tag_depth[n->name()];
      s.max_tag_recursion = std::max(s.max_tag_recursion, d);
      stack.push_back({n, f.depth, false});  // post-visit to pop tag depth
    }
    s.max_depth = std::max(s.max_depth, static_cast<uint64_t>(f.depth));
    uint64_t fanout = n->fanout();
    if (fanout == 0) {
      ++s.leaf_count;
    } else {
      ++internal_nodes;
      total_children += fanout;
      s.max_fanout = std::max(s.max_fanout, fanout);
      ++s.fanout_histogram[fanout];
    }
    const auto& ch = n->children();
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) {
      stack.push_back({*it, f.depth + 1, true});
    }
  }
  s.avg_fanout = internal_nodes == 0
                     ? 0
                     : static_cast<double>(total_children) /
                           static_cast<double>(internal_nodes);
  return s;
}

std::string TreeStats::ToString() const {
  std::ostringstream os;
  os << "nodes=" << node_count << " elements=" << element_count
     << " leaves=" << leaf_count << " max_depth=" << max_depth
     << " max_fanout=" << max_fanout << " avg_fanout=" << avg_fanout
     << " tag_recursion=" << max_tag_recursion;
  return os.str();
}

}  // namespace xml
}  // namespace ruidx
