// A from-scratch, non-validating XML 1.0 parser.
//
// Supports: the XML declaration, DOCTYPE (skipped, internal subsets
// included), elements with attributes, self-closing tags, character data,
// CDATA sections, comments, processing instructions, the five predefined
// entities and numeric character references. Namespaces are carried through
// as literal QNames (prefix:local), which is all the numbering schemes need.
#ifndef RUIDX_XML_PARSER_H_
#define RUIDX_XML_PARSER_H_

#include <memory>
#include <string_view>

#include "util/result.h"
#include "xml/dom.h"

namespace ruidx {
namespace xml {

struct ParseOptions {
  /// Discard text nodes that contain only whitespace (typical for
  /// pretty-printed documents where indentation is not data).
  bool skip_whitespace_text = true;
  /// Keep comment nodes in the tree.
  bool keep_comments = true;
  /// Keep processing instructions in the tree.
  bool keep_processing_instructions = true;
};

/// Parses `input` into a Document. Errors carry 1-based line:column positions.
Result<std::unique_ptr<Document>> Parse(std::string_view input,
                                        const ParseOptions& options = {});

/// Parses the file at `path`.
Result<std::unique_ptr<Document>> ParseFile(const std::string& path,
                                            const ParseOptions& options = {});

}  // namespace xml
}  // namespace ruidx

#endif  // RUIDX_XML_PARSER_H_
