#include "xml/dom.h"

#include <algorithm>

namespace ruidx {
namespace xml {

const char* NodeTypeToString(NodeType t) {
  switch (t) {
    case NodeType::kDocument:
      return "document";
    case NodeType::kElement:
      return "element";
    case NodeType::kText:
      return "text";
    case NodeType::kComment:
      return "comment";
    case NodeType::kProcessingInstruction:
      return "processing-instruction";
    case NodeType::kAttribute:
      return "attribute";
  }
  return "unknown";
}

int Node::IndexInParent() const {
  if (parent_ == nullptr) return -1;
  const auto& sibs = parent_->children_;
  for (size_t i = 0; i < sibs.size(); ++i) {
    if (sibs[i] == this) return static_cast<int>(i);
  }
  return -1;
}

const std::string* Node::GetAttribute(std::string_view name) const {
  for (const Node* a : attributes_) {
    if (a->name_ == name) return &a->value_;
  }
  return nullptr;
}

Node* Node::FirstChildElement(std::string_view tag) const {
  for (Node* c : children_) {
    if (c->is_element() && c->name_ == tag) return c;
  }
  return nullptr;
}

std::string Node::TextContent() const {
  std::string out;
  PreorderTraverse(const_cast<Node*>(this), [&](Node* n, int) {
    if (n->is_text()) out += n->value();
    return true;
  });
  return out;
}

bool Node::HasAncestor(const Node* other) const {
  for (const Node* p = parent_; p != nullptr; p = p->parent_) {
    if (p == other) return true;
  }
  return false;
}

Document::Document() { doc_node_ = NewNode(NodeType::kDocument); }

Node* Document::root() const {
  for (Node* c : doc_node_->children()) {
    if (c->is_element()) return c;
  }
  return nullptr;
}

Node* Document::NewNode(NodeType type) {
  pool_.push_back(std::unique_ptr<Node>(new Node(type, next_serial_++)));
  return pool_.back().get();
}

Node* Document::CreateElement(std::string_view tag) {
  Node* n = NewNode(NodeType::kElement);
  n->name_ = std::string(tag);
  return n;
}

Node* Document::CreateText(std::string_view data) {
  Node* n = NewNode(NodeType::kText);
  n->value_ = std::string(data);
  return n;
}

Node* Document::CreateComment(std::string_view data) {
  Node* n = NewNode(NodeType::kComment);
  n->value_ = std::string(data);
  return n;
}

Node* Document::CreateProcessingInstruction(std::string_view target,
                                            std::string_view data) {
  Node* n = NewNode(NodeType::kProcessingInstruction);
  n->name_ = std::string(target);
  n->value_ = std::string(data);
  return n;
}

Status Document::AppendChild(Node* parent, Node* child) {
  return InsertChild(parent, parent->children_.size(), child);
}

Status Document::InsertChild(Node* parent, size_t pos, Node* child) {
  if (parent == nullptr || child == nullptr) {
    return Status::InvalidArgument("null node");
  }
  if (child->parent_ != nullptr) {
    return Status::InvalidArgument("child is already attached");
  }
  if (child->is_attribute() || child->is_document()) {
    return Status::InvalidArgument("cannot insert attribute/document nodes");
  }
  if (!parent->is_element() && !parent->is_document()) {
    return Status::InvalidArgument("parent cannot hold children");
  }
  if (pos > parent->children_.size()) {
    return Status::OutOfRange("insert position beyond child count");
  }
  if (parent == child) {
    return Status::InvalidArgument("insertion would create a cycle");
  }
  // A cycle needs `parent` to live inside `child`'s (detached) subtree; a
  // childless node cannot contain anything, so the common leaf-append path
  // skips the O(depth) ancestor walk.
  if (!child->children_.empty() && parent->HasAncestor(child)) {
    return Status::InvalidArgument("insertion would create a cycle");
  }
  parent->children_.insert(parent->children_.begin() + static_cast<long>(pos),
                           child);
  child->parent_ = parent;
  return Status::OK();
}

Status Document::RemoveSubtree(Node* node) {
  if (node == nullptr) return Status::InvalidArgument("null node");
  Node* parent = node->parent_;
  if (parent == nullptr) return Status::InvalidArgument("node is not attached");
  auto& sibs = parent->children_;
  auto it = std::find(sibs.begin(), sibs.end(), node);
  if (it == sibs.end()) return Status::Corruption("node missing from parent");
  sibs.erase(it);
  node->parent_ = nullptr;
  return Status::OK();
}

Status Document::SetAttribute(Node* element, std::string_view name,
                              std::string_view value) {
  if (element == nullptr || !element->is_element()) {
    return Status::InvalidArgument("attributes can only be set on elements");
  }
  for (Node* a : element->attributes_) {
    if (a->name_ == name) {
      a->value_ = std::string(value);
      return Status::OK();
    }
  }
  Node* a = NewNode(NodeType::kAttribute);
  a->name_ = std::string(name);
  a->value_ = std::string(value);
  a->parent_ = element;
  element->attributes_.push_back(a);
  return Status::OK();
}

size_t Document::CountAttachedNodes(bool include_attributes) const {
  size_t count = 0;
  PreorderTraverse(doc_node_, [&](Node* n, int) {
    if (!n->is_document()) ++count;
    if (include_attributes) count += n->attributes().size();
    return true;
  });
  return count;
}

Node* DeepCopy(Document* dst, const Node* src) {
  auto shallow = [dst](const Node* n) -> Node* {
    switch (n->type()) {
      case NodeType::kElement: {
        Node* e = dst->CreateElement(n->name());
        for (const Node* a : n->attributes()) {
          (void)dst->SetAttribute(e, a->name(), a->value());
        }
        return e;
      }
      case NodeType::kText:
        return dst->CreateText(n->value());
      case NodeType::kComment:
        return dst->CreateComment(n->value());
      case NodeType::kProcessingInstruction:
        return dst->CreateProcessingInstruction(n->name(), n->value());
      case NodeType::kDocument:
      case NodeType::kAttribute:
        return nullptr;  // not copyable as subtree roots
    }
    return nullptr;
  };
  Node* root_copy = shallow(src);
  if (root_copy == nullptr) return nullptr;
  // Explicit stack: arbitrarily deep subtrees must not overflow the C stack.
  struct Frame {
    const Node* source;
    Node* copy;
  };
  std::vector<Frame> stack{{src, root_copy}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    for (const Node* c : f.source->children()) {
      Node* child_copy = shallow(c);
      if (child_copy == nullptr) continue;
      (void)dst->AppendChild(f.copy, child_copy);
      stack.push_back({c, child_copy});
    }
  }
  return root_copy;
}

std::vector<Node*> CollectPreorder(Node* root) {
  std::vector<Node*> out;
  PreorderTraverse(root, [&](Node* n, int) {
    out.push_back(n);
    return true;
  });
  return out;
}

}  // namespace xml
}  // namespace ruidx
