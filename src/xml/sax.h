// SAX-style streaming parse: the tokenizer under the DOM parser, exposed as
// an event interface. Handlers see start/end element, text, comment and PI
// events in document order; nothing is materialized. This is what lets the
// streaming labeler (core/streaming_labeler.h) number documents that are
// inconvenient to hold as a DOM — the paper's "managing large XML trees"
// application (Sec. 4).
#ifndef RUIDX_XML_SAX_H_
#define RUIDX_XML_SAX_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ruidx {
namespace xml {

struct ParseOptions;  // xml/parser.h

/// One parsed attribute (entities already expanded).
using SaxAttribute = std::pair<std::string, std::string>;

/// \brief Receives parse events. Returning a non-OK status aborts the parse
/// and surfaces the status to the caller.
class SaxHandler {
 public:
  virtual ~SaxHandler() = default;

  virtual Status StartElement(std::string_view name,
                              const std::vector<SaxAttribute>& attributes) = 0;
  virtual Status EndElement(std::string_view name) = 0;
  /// Character data (entities expanded; CDATA sections included verbatim).
  virtual Status Text(std::string_view data) = 0;
  virtual Status Comment(std::string_view data) = 0;
  virtual Status ProcessingInstruction(std::string_view target,
                                       std::string_view data) = 0;
};

/// \brief A SaxHandler with no-op defaults, for handlers that care about a
/// subset of events.
class SaxHandlerBase : public SaxHandler {
 public:
  Status StartElement(std::string_view, const std::vector<SaxAttribute>&)
      override {
    return Status::OK();
  }
  Status EndElement(std::string_view) override { return Status::OK(); }
  Status Text(std::string_view) override { return Status::OK(); }
  Status Comment(std::string_view) override { return Status::OK(); }
  Status ProcessingInstruction(std::string_view, std::string_view) override {
    return Status::OK();
  }
};

/// Streams `input` through `handler`. Enforces well-formedness (matching
/// tags, single root, no text outside the root); honours the same
/// ParseOptions as the DOM parser (whitespace/comment/PI filtering).
Status SaxParse(std::string_view input, SaxHandler* handler,
                const ParseOptions& options);

/// Same, with default options.
Status SaxParse(std::string_view input, SaxHandler* handler);

}  // namespace xml
}  // namespace ruidx

#endif  // RUIDX_XML_SAX_H_
