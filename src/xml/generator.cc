#include "xml/generator.h"

#include <deque>
#include <string>
#include <vector>

#include "util/random.h"

namespace ruidx {
namespace xml {

namespace {

std::string TagName(uint32_t i) { return "t" + std::to_string(i); }

void Check(const Status& st) {
  (void)st;
  // Generators only perform structurally valid insertions.
}

}  // namespace

std::unique_ptr<Document> GenerateUniformTree(uint64_t node_budget,
                                              uint64_t fanout) {
  auto doc = std::make_unique<Document>();
  Node* root = doc->CreateElement("root");
  Check(doc->AppendChild(doc->document_node(), root));
  uint64_t created = 1;
  std::deque<Node*> frontier{root};
  while (created < node_budget && !frontier.empty()) {
    Node* cur = frontier.front();
    frontier.pop_front();
    for (uint64_t i = 0; i < fanout && created < node_budget; ++i) {
      Node* child = doc->CreateElement(TagName(static_cast<uint32_t>(i)));
      Check(doc->AppendChild(cur, child));
      frontier.push_back(child);
      ++created;
    }
  }
  return doc;
}

std::unique_ptr<Document> GenerateRandomTree(const RandomTreeConfig& config) {
  auto doc = std::make_unique<Document>();
  Rng rng(config.seed);
  Node* root = doc->CreateElement("root");
  Check(doc->AppendChild(doc->document_node(), root));
  // Open nodes still have room for children.
  std::vector<Node*> open{root};
  Node* last = root;
  uint64_t created = 1;
  while (created < config.node_budget && !open.empty()) {
    Node* parent;
    if (last->fanout() < config.max_fanout && rng.NextBool(config.depth_bias)) {
      parent = last;
    } else {
      size_t idx = static_cast<size_t>(rng.NextBounded(open.size()));
      parent = open[idx];
    }
    Node* child =
        doc->CreateElement(TagName(static_cast<uint32_t>(rng.NextBounded(
            config.tag_alphabet))));
    Check(doc->AppendChild(parent, child));
    ++created;
    if (config.text_probability > 0 && created < config.node_budget &&
        rng.NextBool(config.text_probability)) {
      Check(doc->AppendChild(child,
                             doc->CreateText("v" + std::to_string(created))));
      ++created;
    }
    if (parent->fanout() >= config.max_fanout) {
      for (size_t i = 0; i < open.size(); ++i) {
        if (open[i] == parent) {
          open[i] = open.back();
          open.pop_back();
          break;
        }
      }
    }
    if (child->fanout() < config.max_fanout) open.push_back(child);
    last = child;
  }
  return doc;
}

std::unique_ptr<Document> GenerateSkewedTree(const SkewedTreeConfig& config) {
  auto doc = std::make_unique<Document>();
  Rng rng(config.seed);
  // Fan-out of each internal node drawn from Zipf over [1, max_fanout]:
  // rank 0 (most common) maps to fan-out 1, the rare tail to max_fanout.
  ZipfGenerator zipf(config.max_fanout, config.zipf_theta, config.seed ^ 0x5eed);
  Node* root = doc->CreateElement("root");
  Check(doc->AppendChild(doc->document_node(), root));
  uint64_t created = 1;
  std::deque<Node*> frontier{root};
  while (created < config.node_budget && !frontier.empty()) {
    Node* cur = frontier.front();
    frontier.pop_front();
    // Invert the rank so small fan-outs dominate but the max occasionally
    // appears; keep the very first node wide to set the document max.
    uint64_t fanout = (created == 1) ? config.max_fanout : zipf.Next() + 1;
    for (uint64_t i = 0; i < fanout && created < config.node_budget; ++i) {
      Node* child = doc->CreateElement(
          TagName(static_cast<uint32_t>(rng.NextBounded(12))));
      Check(doc->AppendChild(cur, child));
      ++created;
      // Half the created nodes stay leaves to keep the tree broad.
      if (rng.NextBool(0.5)) frontier.push_back(child);
    }
  }
  return doc;
}

std::unique_ptr<Document> GenerateDeepTree(const DeepTreeConfig& config) {
  auto doc = std::make_unique<Document>();
  Rng rng(config.seed);
  Node* cur = doc->CreateElement("section");
  Check(doc->AppendChild(doc->document_node(), cur));
  for (uint64_t d = 1; d < config.depth; ++d) {
    for (uint64_t s = 0; s < config.siblings_per_level; ++s) {
      Node* leaf = doc->CreateElement("para");
      Check(doc->AppendChild(cur, leaf));
      Check(doc->AppendChild(leaf,
                             doc->CreateText("p" + std::to_string(d))));
    }
    Node* next = doc->CreateElement("section");
    // The recursive child sits at a random position among its siblings.
    // DOM fan-out (insertion slot count), not identifier arithmetic.
    size_t pos = static_cast<size_t>(
        rng.NextBounded(cur->fanout() + 1));  // NOLINT(raw-id-arithmetic)
    Check(doc->InsertChild(cur, pos, next));
    cur = next;
  }
  return doc;
}

std::unique_ptr<Document> GenerateDblpLike(uint64_t records, uint64_t seed) {
  auto doc = std::make_unique<Document>();
  Rng rng(seed);
  Node* root = doc->CreateElement("dblp");
  Check(doc->AppendChild(doc->document_node(), root));
  const char* kinds[] = {"article", "inproceedings", "book"};
  for (uint64_t i = 0; i < records; ++i) {
    Node* rec = doc->CreateElement(kinds[rng.NextBounded(3)]);
    Check(doc->SetAttribute(rec, "key", "rec/" + std::to_string(i)));
    Check(doc->AppendChild(root, rec));
    uint64_t authors = 1 + rng.NextBounded(4);
    for (uint64_t a = 0; a < authors; ++a) {
      Node* au = doc->CreateElement("author");
      Check(doc->AppendChild(au, doc->CreateText("A" + std::to_string(
                                     rng.NextBounded(1000)))));
      Check(doc->AppendChild(rec, au));
    }
    Node* title = doc->CreateElement("title");
    Check(doc->AppendChild(title,
                           doc->CreateText("Title " + std::to_string(i))));
    Check(doc->AppendChild(rec, title));
    Node* year = doc->CreateElement("year");
    Check(doc->AppendChild(
        year, doc->CreateText(std::to_string(1980 + rng.NextBounded(25)))));
    Check(doc->AppendChild(rec, year));
  }
  return doc;
}

std::unique_ptr<Document> GenerateXmarkLike(const XmarkConfig& config) {
  auto doc = std::make_unique<Document>();
  Rng rng(config.seed);
  Node* site = doc->CreateElement("site");
  Check(doc->AppendChild(doc->document_node(), site));

  // Regions with item lists.
  Node* regions = doc->CreateElement("regions");
  Check(doc->AppendChild(site, regions));
  const char* region_names[] = {"africa", "asia",          "australia",
                                "europe", "namerica",      "samerica"};
  for (uint64_t i = 0; i < config.items; ++i) {
    Node* region = nullptr;
    std::string rname = region_names[i % 6];
    region = regions->FirstChildElement(rname);
    if (region == nullptr) {
      region = doc->CreateElement(rname);
      Check(doc->AppendChild(regions, region));
    }
    Node* item = doc->CreateElement("item");
    Check(doc->SetAttribute(item, "id", "item" + std::to_string(i)));
    Check(doc->AppendChild(region, item));
    Node* name = doc->CreateElement("name");
    Check(doc->AppendChild(name, doc->CreateText("Item " + std::to_string(i))));
    Check(doc->AppendChild(item, name));
    Node* desc = doc->CreateElement("description");
    Node* text = doc->CreateElement("text");
    Check(doc->AppendChild(text, doc->CreateText("desc")));
    Check(doc->AppendChild(desc, text));
    Check(doc->AppendChild(item, desc));
    Node* quantity = doc->CreateElement("quantity");
    Check(doc->AppendChild(
        quantity, doc->CreateText(std::to_string(1 + rng.NextBounded(5)))));
    Check(doc->AppendChild(item, quantity));
  }

  // People.
  Node* people = doc->CreateElement("people");
  Check(doc->AppendChild(site, people));
  for (uint64_t i = 0; i < config.people; ++i) {
    Node* person = doc->CreateElement("person");
    Check(doc->SetAttribute(person, "id", "person" + std::to_string(i)));
    Check(doc->AppendChild(people, person));
    Node* name = doc->CreateElement("name");
    Check(doc->AppendChild(name, doc->CreateText("P" + std::to_string(i))));
    Check(doc->AppendChild(person, name));
    Node* email = doc->CreateElement("emailaddress");
    Check(doc->AppendChild(
        email, doc->CreateText("p" + std::to_string(i) + "@example.org")));
    Check(doc->AppendChild(person, email));
    if (rng.NextBool(0.4)) {
      Node* watches = doc->CreateElement("watches");
      uint64_t w = 1 + rng.NextBounded(3);
      for (uint64_t j = 0; j < w; ++j) {
        Node* watch = doc->CreateElement("watch");
        Check(doc->SetAttribute(
            watch, "open_auction",
            "open_auction" + std::to_string(rng.NextBounded(
                                 config.open_auctions ? config.open_auctions
                                                      : 1))));
        Check(doc->AppendChild(watches, watch));
      }
      Check(doc->AppendChild(person, watches));
    }
  }

  // Open auctions with bidder ladders.
  Node* open_auctions = doc->CreateElement("open_auctions");
  Check(doc->AppendChild(site, open_auctions));
  for (uint64_t i = 0; i < config.open_auctions; ++i) {
    Node* auction = doc->CreateElement("open_auction");
    Check(doc->SetAttribute(auction, "id", "open_auction" + std::to_string(i)));
    Check(doc->AppendChild(open_auctions, auction));
    Node* initial = doc->CreateElement("initial");
    Check(doc->AppendChild(
        initial, doc->CreateText(std::to_string(rng.NextBounded(100)))));
    Check(doc->AppendChild(auction, initial));
    uint64_t bidders = rng.NextBounded(8);
    for (uint64_t b = 0; b < bidders; ++b) {
      Node* bidder = doc->CreateElement("bidder");
      Node* increase = doc->CreateElement("increase");
      Check(doc->AppendChild(
          increase, doc->CreateText(std::to_string(1 + rng.NextBounded(20)))));
      Check(doc->AppendChild(bidder, increase));
      Check(doc->AppendChild(auction, bidder));
    }
    Node* itemref = doc->CreateElement("itemref");
    Check(doc->SetAttribute(
        itemref, "item",
        "item" + std::to_string(rng.NextBounded(config.items ? config.items
                                                             : 1))));
    Check(doc->AppendChild(auction, itemref));
  }

  // Closed auctions.
  Node* closed_auctions = doc->CreateElement("closed_auctions");
  Check(doc->AppendChild(site, closed_auctions));
  for (uint64_t i = 0; i < config.closed_auctions; ++i) {
    Node* auction = doc->CreateElement("closed_auction");
    Check(doc->AppendChild(closed_auctions, auction));
    Node* price = doc->CreateElement("price");
    Check(doc->AppendChild(
        price, doc->CreateText(std::to_string(10 + rng.NextBounded(500)))));
    Check(doc->AppendChild(auction, price));
  }

  // Category hierarchy (recursive).
  Node* categories = doc->CreateElement("categories");
  Check(doc->AppendChild(site, categories));
  for (uint64_t i = 0; i < config.categories; ++i) {
    Node* cat = doc->CreateElement("category");
    Check(doc->SetAttribute(cat, "id", "category" + std::to_string(i)));
    Check(doc->AppendChild(categories, cat));
    Node* name = doc->CreateElement("name");
    Check(doc->AppendChild(name, doc->CreateText("C" + std::to_string(i))));
    Check(doc->AppendChild(cat, name));
    // Nested sub-categories with recursive element names.
    Node* cur = cat;
    uint64_t nest = rng.NextBounded(4);
    for (uint64_t d = 0; d < nest; ++d) {
      Node* sub = doc->CreateElement("category");
      Check(doc->AppendChild(cur, sub));
      cur = sub;
    }
  }
  return doc;
}

}  // namespace xml
}  // namespace ruidx
