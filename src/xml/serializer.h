// XML serialization (DOM -> text) with correct escaping.
#ifndef RUIDX_XML_SERIALIZER_H_
#define RUIDX_XML_SERIALIZER_H_

#include <string>

#include "xml/dom.h"

namespace ruidx {
namespace xml {

struct SerializeOptions {
  /// Indent nested elements (2 spaces per level) and put each on its own
  /// line. With pretty=false the output is a single line, byte-faithful to
  /// the text content.
  bool pretty = false;
  /// Emit an "<?xml version=...?>" declaration before the root.
  bool declaration = false;
};

/// Serializes the subtree rooted at `node` (pass document_node() for the
/// whole document).
std::string Serialize(const Node* node, const SerializeOptions& options = {});

/// Escapes `data` for use as character data (&, <, >).
std::string EscapeText(const std::string& data);

/// Escapes `data` for use inside a double-quoted attribute value.
std::string EscapeAttribute(const std::string& data);

}  // namespace xml
}  // namespace ruidx

#endif  // RUIDX_XML_SERIALIZER_H_
