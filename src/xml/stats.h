// Topology statistics for XML trees. The behaviour of every numbering scheme
// in this library is a function of these quantities (fan-out distribution,
// depth, recursion), so the benchmark harness reports them with each run.
#ifndef RUIDX_XML_STATS_H_
#define RUIDX_XML_STATS_H_

#include <cstdint>
#include <map>
#include <string>

#include "xml/dom.h"

namespace ruidx {
namespace xml {

struct TreeStats {
  uint64_t node_count = 0;      // non-attribute nodes in the tree
  uint64_t element_count = 0;
  uint64_t leaf_count = 0;
  uint64_t max_depth = 0;       // root has depth 0
  uint64_t max_fanout = 0;
  double avg_fanout = 0;        // over internal nodes
  /// Depth of tag-recursion: the largest number of equal-named elements on
  /// any root-to-leaf path ("trees having a high degree of recursion",
  /// Sec. 5 of the paper).
  uint64_t max_tag_recursion = 0;
  /// fanout -> number of internal nodes with that fanout.
  std::map<uint64_t, uint64_t> fanout_histogram;

  std::string ToString() const;
};

/// Computes statistics over the subtree rooted at `root`.
TreeStats ComputeStats(Node* root);

}  // namespace xml
}  // namespace ruidx

#endif  // RUIDX_XML_STATS_H_
