// Quickstart: parse an XML document, number it with the 2-level ruid, and
// navigate by identifier arithmetic alone.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "core/axes.h"
#include "core/ruid2.h"
#include "util/table_printer.h"
#include "xml/parser.h"

using namespace ruidx;

int main() {
  const char* kXml =
      "<library>"
      "  <shelf genre=\"databases\">"
      "    <book id=\"b1\"><title>The XML Papers</title><year>2002</year></book>"
      "    <book id=\"b2\"><title>Numbering Schemes</title></book>"
      "  </shelf>"
      "  <shelf genre=\"systems\">"
      "    <book id=\"b3\"><title>Pages and Pools</title></book>"
      "  </shelf>"
      "</library>";

  // 1. Parse.
  auto parsed = xml::Parse(kXml);
  if (!parsed.ok()) {
    std::cerr << "parse failed: " << parsed.status().ToString() << "\n";
    return 1;
  }
  auto doc = parsed.MoveValueUnsafe();

  // 2. Number the tree. Small areas here so the example actually shows the
  //    two levels; real documents use the defaults.
  core::PartitionOptions options;
  options.max_area_nodes = 4;
  options.max_area_depth = 2;
  core::Ruid2Scheme scheme(options);
  scheme.Build(doc->root());

  std::cout << "kappa (frame fan-out) = " << scheme.kappa() << "\n";
  std::cout << "areas = " << scheme.partition().areas.size()
            << ", global state = " << scheme.GlobalStateBytes() << " bytes\n";

  // 3. Every node's identifier, in the paper's (g, l, r) notation.
  TablePrinter ids("2-level ruid identifiers");
  ids.SetHeader({"node", "identifier"});
  xml::PreorderTraverse(doc->root(), [&](xml::Node* n, int depth) {
    std::string label(static_cast<size_t>(depth) * 2, ' ');
    label += n->is_element() ? "<" + n->name() + ">" : "\"" + n->value() + "\"";
    ids.AddRow({label, scheme.label(n).ToString()});
    return true;
  });
  ids.Print();

  // 4. Table K — the only state rparent() needs, resident in memory.
  TablePrinter ktable("table K (global index, root local, local fan-out)");
  ktable.SetHeader({"global", "root local", "fan-out"});
  for (const auto& row : scheme.ktable().rows()) {
    ktable.AddRow({row.global.ToDecimalString(), row.root_local.ToDecimalString(),
                   std::to_string(row.fanout)});
  }
  ktable.Print();

  // 5. Climb from a deep node to the root using identifiers only — no tree
  //    pointers involved.
  xml::Node* title =
      doc->root()->children()[0]->children()[0]->children()[0];
  std::cout << "\nancestor chain of " << scheme.label(title).ToString()
            << " (computed by rparent, Fig. 6):\n";
  core::Ruid2Id cursor = scheme.label(title);
  for (;;) {
    auto parent = scheme.Parent(cursor);
    if (!parent.ok()) break;
    cursor = *parent;
    xml::Node* node = scheme.NodeById(cursor);
    std::cout << "  " << cursor.ToString() << "  ->  <"
              << (node != nullptr ? node->name() : "?") << ">\n";
  }

  // 6. Axes from identifiers (Sec. 3.5).
  core::RuidAxes axes(&scheme);
  std::cout << "\nchildren of the root, via rchildren():\n";
  for (xml::Node* child : axes.Children(scheme.label(doc->root()))) {
    std::cout << "  <" << child->name() << "> "
              << scheme.label(child).ToString() << "\n";
  }
  return 0;
}
