// Change management over stable identifiers (Sec. 4): two sites hold copies
// of the same document; site A edits and ships its identifier-addressed
// journal; site B replays it and converges — content AND identifiers.
//
//   $ ./build/examples/version_sync_demo
#include <iostream>

#include "version/versioned_document.h"
#include "xml/serializer.h"

using namespace ruidx;

int main() {
  const std::string base =
      "<catalog>"
      "<product sku=\"A\"><price>10</price></product>"
      "<product sku=\"B\"><price>20</price></product>"
      "</catalog>";

  core::PartitionOptions options;
  options.max_area_nodes = 6;
  options.max_area_depth = 2;

  auto site_a = version::VersionedDocument::FromXml(base, options);
  auto site_b = version::VersionedDocument::FromXml(base, options);
  if (!site_a.ok() || !site_b.ok()) {
    std::cerr << "setup failed\n";
    return 1;
  }

  // Site A edits, addressing nodes by their ruid.
  const auto& scheme = (*site_a)->scheme();
  xml::Node* catalog = (*site_a)->document()->root();
  auto inserted = (*site_a)->Insert(
      scheme.label(catalog), 1,
      "<product sku=\"C\"><price>15</price></product>");
  if (!inserted.ok()) {
    std::cerr << inserted.status().ToString() << "\n";
    return 1;
  }
  std::cout << "site A inserted product C, it got identifier "
            << inserted->ToString() << "\n";
  xml::Node* product_b = catalog->children().back();
  (void)(*site_a)->Delete(scheme.label(product_b));

  std::cout << "\nsite A journal:\n";
  for (const auto& op : (*site_a)->journal()) {
    std::cout << "  " << op.ToString() << "\n";
  }
  std::cout << "identifiers relabeled across all edits: "
            << (*site_a)->total_relabeled() << "\n";

  // Ship the journal to site B and replay.
  if (auto st = (*site_b)->ApplyAll((*site_a)->journal()); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  std::cout << "\nsite A now: " << (*site_a)->ToXml() << "\n";
  std::cout << "site B now: " << (*site_b)->ToXml() << "\n";
  std::cout << (((*site_a)->ToXml() == (*site_b)->ToXml())
                    ? "converged: yes\n"
                    : "converged: NO!\n");
  return 0;
}
