// XPath over identifiers: evaluates location paths on an XMark-shaped
// auction document twice — navigating the DOM, and generating axes from
// ruid identifiers (Sec. 3.5) — and shows that both agree while reporting
// how much work each did.
//
//   $ ./build/examples/xpath_demo
#include <iostream>

#include "core/ruid2.h"
#include "util/table_printer.h"
#include "xml/generator.h"
#include "xml/stats.h"
#include "xpath/dom_eval.h"
#include "xpath/ruid_eval.h"

using namespace ruidx;

int main() {
  xml::XmarkConfig config;
  config.items = 120;
  config.people = 80;
  config.open_auctions = 60;
  config.closed_auctions = 30;
  config.categories = 12;
  auto doc = xml::GenerateXmarkLike(config);
  std::cout << "document: " << xml::ComputeStats(doc->root()).ToString()
            << "\n";

  core::PartitionOptions options;
  options.max_area_nodes = 64;
  options.max_area_depth = 4;
  core::Ruid2Scheme scheme(options);
  scheme.Build(doc->root());

  xpath::DomEvaluator dom_eval(doc.get());
  xpath::RuidEvaluator ruid_eval(doc.get(), &scheme);

  const char* kQueries[] = {
      "/site/people/person",
      "//person[@id=\"person7\"]/name",
      "//open_auction/bidder/increase",
      "//item/ancestor::*",
      "//bidder[2]",
      "//person[watches]/name",
      "//increase/preceding::initial",
      "//category//category",
  };

  TablePrinter table("location paths: DOM navigation vs ruid identifiers");
  table.SetHeader({"query", "results", "equal", "DOM nodes visited",
                   "ruid ids generated"});
  for (const char* query : kQueries) {
    dom_eval.ResetCounters();
    ruid_eval.ResetCounters();
    auto expected = dom_eval.Evaluate(query);
    auto actual = ruid_eval.Evaluate(query);
    if (!expected.ok() || !actual.ok()) {
      std::cerr << "query failed: " << query << "\n";
      return 1;
    }
    bool equal = *expected == *actual;
    table.AddRow({query, std::to_string(expected->size()),
                  equal ? "yes" : "NO!",
                  std::to_string(dom_eval.nodes_visited()),
                  std::to_string(ruid_eval.ids_generated())});
  }
  table.Print();

  // A closer look at one query result.
  auto names = ruid_eval.Evaluate("//person[@id=\"person3\"]/name/text()");
  if (names.ok() && !names->empty()) {
    std::cout << "\nperson3 is named: " << (*names)[0]->value() << "\n";
  }
  return 0;
}
