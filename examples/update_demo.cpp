// Structural update robustness (Sec. 3.2 / Fig. 1): replays the paper's
// Fig. 1 insertion on the original UID, then contrasts the renumbering
// scope of UID and ruid on a larger document under repeated insertions.
//
//   $ ./build/examples/update_demo
#include <iostream>

#include "core/ruid2.h"
#include "scheme/uid.h"
#include "util/table_printer.h"
#include "xml/generator.h"

using namespace ruidx;

namespace {

/// Rebuilds the Fig. 1(a) tree: real nodes at UIDs 1,2,3,8,9,23,26,27 (k=3).
struct Fig1Tree {
  std::unique_ptr<xml::Document> doc;
  xml::Node* root;
  std::vector<xml::Node*> nodes;  // all real nodes below the root

  Fig1Tree() : doc(std::make_unique<xml::Document>()) {
    root = doc->CreateElement("n");
    (void)doc->AppendChild(doc->document_node(), root);
    auto add = [&](xml::Node* parent) {
      xml::Node* n = doc->CreateElement("n");
      (void)doc->AppendChild(parent, n);
      nodes.push_back(n);
      return n;
    };
    xml::Node* a = add(root);   // UID 2
    xml::Node* b = add(root);   // UID 3
    (void)a;
    xml::Node* c = add(b);      // UID 8
    xml::Node* d = add(b);      // UID 9
    add(c);                     // UID 23
    add(d);                     // UID 26
    add(d);                     // UID 27
  }
};

}  // namespace

int main() {
  // --- Part 1: Fig. 1 exactly -------------------------------------------
  {
    Fig1Tree tree;
    scheme::UidScheme uid(3);
    uid.Build(tree.root);
    TablePrinter before("Fig. 1(a): original UID before insertion (k = 3)");
    before.SetHeader({"node", "UID"});
    for (xml::Node* n : tree.nodes) {
      before.AddRow({"<" + n->name() + ">", uid.LabelString(n)});
    }
    before.Print();

    xml::Node* inserted = tree.doc->CreateElement("new");
    (void)tree.doc->InsertChild(tree.root, 1, inserted);
    uint64_t changed = uid.RelabelAndCount(tree.root);

    TablePrinter after(
        "Fig. 1(b): after inserting between nodes 2 and 3 — " +
        std::to_string(changed) + " identifiers changed");
    after.SetHeader({"node", "UID"});
    after.AddRow({"<new>", uid.LabelString(inserted)});
    for (xml::Node* n : tree.nodes) {
      after.AddRow({"<" + n->name() + ">", uid.LabelString(n)});
    }
    after.Print();
  }

  // --- Part 2: scope of renumbering, UID vs ruid --------------------------
  auto make_doc = [] { return xml::GenerateUniformTree(4000, 3); };
  struct Row {
    std::string where;
    uint64_t uid_changed;
    uint64_t ruid_changed;
  };
  std::vector<Row> rows;
  for (int depth : {1, 3, 5}) {
    auto doc_uid = make_doc();
    auto doc_ruid = make_doc();
    scheme::UidScheme uid;
    uid.Build(doc_uid->root());
    core::PartitionOptions options;
    options.max_area_nodes = 64;
    options.max_area_depth = 4;
    core::Ruid2Scheme ruid(options);
    ruid.Build(doc_ruid->root());

    // Insert as the FIRST child of a node at the given depth (worst case:
    // every right sibling shifts).
    auto target_at = [&](xml::Document* d) {
      xml::Node* n = d->root();
      for (int i = 0; i < depth; ++i) n = n->children()[0];
      return n;
    };
    xml::Node* t1 = target_at(doc_uid.get());
    (void)doc_uid->InsertChild(t1, 0, doc_uid->CreateElement("x"));
    uint64_t uid_changed = uid.RelabelAndCount(doc_uid->root());

    xml::Node* t2 = target_at(doc_ruid.get());
    auto report =
        ruid.InsertAndRelabel(doc_ruid.get(), t2, 0, doc_ruid->CreateElement("x"));
    rows.push_back({"depth " + std::to_string(depth), uid_changed,
                    report.ok() ? report->relabeled : 0});
  }

  TablePrinter scope(
      "renumbering scope after one insertion (4000-node document)");
  scope.SetHeader({"insertion point", "UID ids changed", "ruid ids changed"});
  for (const Row& row : rows) {
    scope.AddRow({row.where, TablePrinter::FormatCount(row.uid_changed),
                  TablePrinter::FormatCount(row.ruid_changed)});
  }
  scope.Print();
  std::cout << "\nThe nearer the root the insertion lands, the more the "
               "original UID renumbers;\nruid confines the damage to one "
               "UID-local area (Sec. 3.2).\n";
  return 0;
}
