// Scalability (Sec. 3.1 / Sec. 2.4): on a deep recursive document the
// original UID overflows 64-bit integers, while stacking ruid levels keeps
// every identifier component machine-word sized.
//
//   $ ./build/examples/scalability_demo
#include <iostream>

#include "core/ruidm.h"
#include "scheme/uid.h"
#include "util/table_printer.h"
#include "xml/generator.h"
#include "xml/stats.h"

using namespace ruidx;

int main() {
  xml::DeepTreeConfig config;
  config.depth = 80;
  config.siblings_per_level = 4;
  auto doc = xml::GenerateDeepTree(config);
  std::cout << "document: " << xml::ComputeStats(doc->root()).ToString()
            << "\n";

  scheme::UidScheme uid;
  uid.Build(doc->root());
  std::cout << "\noriginal UID: k = " << uid.k() << ", largest identifier is "
            << uid.max_label().BitWidth() << " bits wide:\n  "
            << uid.max_label().ToDecimalString() << "\n";

  core::PartitionOptions options;
  options.max_area_nodes = 32;
  options.max_area_depth = 4;

  TablePrinter table("multilevel ruid: component width vs levels");
  table.SetHeader({"levels", "max component bits", "top-level tree size",
                   "K-table bytes"});
  for (int levels = 1; levels <= 4; ++levels) {
    core::RuidMScheme scheme(levels, options);
    if (auto st = scheme.Build(doc->root()); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    table.AddRow({std::to_string(levels),
                  std::to_string(scheme.MaxComponentBits()),
                  std::to_string(scheme.top_level_size()),
                  std::to_string(scheme.GlobalStateBytes())});
  }
  table.Print();

  // Show one node's identifier at different depths of encoding (Fig. 8).
  xml::Node* node = doc->root();
  for (int i = 0; i < 20 && !node->children().empty(); ++i) {
    node = node->children().back();
  }
  std::cout << "\none node's identifier under increasing levels (Fig. 8):\n";
  for (int levels = 1; levels <= 3; ++levels) {
    core::RuidMScheme scheme(levels, options);
    (void)scheme.Build(doc->root());
    std::cout << "  " << levels << " level(s): "
              << scheme.IdOf(node).ToString() << "\n";
  }

  // Addressing capacity: with e nodes per level, m levels address ~ e^m
  // (Sec. 3.1). Illustrate with the capacity of one 64-bit UID level.
  std::cout << "\ncapacity: one UID level bounded by 2^64 addresses ~1.8e19 "
               "slots;\nm stacked levels address (2^64)^m — any document.\n";
  return 0;
}
