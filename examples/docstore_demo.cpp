// Disk-backed document store: loads a bibliography into the element store
// (records sorted by identifier, indexed by a B+tree) and contrasts the
// ancestor check that runs on in-memory identifier arithmetic with the one
// that chases stored parent pointers (Sec. 3.3, Sec. 4).
//
//   $ ./build/examples/docstore_demo
#include <iostream>

#include "core/ruid2.h"
#include "storage/element_store.h"
#include "util/table_printer.h"
#include "xml/generator.h"
#include "xml/stats.h"

using namespace ruidx;

int main() {
  auto doc = xml::GenerateDblpLike(2000);
  std::cout << "document: " << xml::ComputeStats(doc->root()).ToString()
            << "\n";

  core::PartitionOptions options;
  options.max_area_nodes = 128;
  options.max_area_depth = 3;
  core::Ruid2Scheme scheme(options);
  scheme.Build(doc->root());

  auto store_result = storage::ElementStore::Create("", /*buffer_pool_pages=*/64);
  if (!store_result.ok()) {
    std::cerr << store_result.status().ToString() << "\n";
    return 1;
  }
  auto store = store_result.MoveValueUnsafe();
  if (auto st = store->BulkLoad(scheme, doc->root()); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  (void)store->Flush();
  std::cout << "stored " << store->record_count() << " records\n";

  // Pick a deep text node and the root.
  xml::Node* deep = doc->root()->children()[1234]->children()[0]->children()[0];
  core::Ruid2Id root_id = scheme.label(doc->root());
  core::Ruid2Id deep_id = scheme.label(deep);

  TablePrinter table("ancestor check: identifier arithmetic vs record chasing");
  table.SetHeader({"method", "answer", "page accesses"});

  store->ResetStats();
  bool via_ruid = store->IsAncestorViaRuid(scheme, root_id, deep_id);
  table.AddRow({"rparent arithmetic (kappa + K in memory)",
                via_ruid ? "ancestor" : "not ancestor",
                std::to_string(store->logical_page_accesses())});

  store->ResetStats();
  auto via_nav = store->IsAncestorViaParentPointers(root_id, deep_id);
  table.AddRow({"stored parent pointers",
                via_nav.ok() && *via_nav ? "ancestor" : "not ancestor",
                std::to_string(store->logical_page_accesses())});
  table.Print();

  // Fetch a record by identifier.
  auto record = store->Get(deep_id);
  if (record.ok()) {
    std::cout << "\nrecord " << record->id.ToString() << ": "
              << (record->name.empty() ? "\"" + record->value + "\""
                                       : "<" + record->name + ">")
              << "\n";
  }

  // Area scan: one identifier range covers one UID-local area — the
  // file/table selection idea of Sec. 4.
  const auto& rows = scheme.ktable().rows();
  const BigUint& some_area = rows[rows.size() / 2].global;
  size_t members = 0;
  store->ResetStats();
  (void)store->ScanArea(some_area, [&](const storage::ElementRecord&) {
    ++members;
    return true;
  });
  std::cout << "\narea " << some_area.ToDecimalString() << " scan: " << members
            << " records in " << store->logical_page_accesses()
            << " page accesses (records cluster by area)\n";
  return 0;
}
